// Package wire is the versioned, self-describing binary encoding that lets
// collection-game summaries and cluster protocol messages cross process
// boundaries. Every encoded message starts with the same four-byte header —
//
//	offset 0–1  magic "TQ" (0x54 0x51)
//	offset 2    format version
//	offset 3    payload kind (KindSummary, KindVector, KindReport, KindDirective)
//
// — followed by a little-endian payload. Decoders reject foreign bytes
// (ErrMagic), payloads from outside the supported version window
// (ErrVersion — both a future format and a retired one are explicit
// rejection, never silent misparsing), payloads of the wrong kind
// (ErrKind), short payloads (ErrTruncated) and trailing garbage. Encode∘Decode is the identity on every message type: float64
// fields are shipped bit-exact, so a summary merged from decoded shard
// summaries equals the summary merged from the originals — the property the
// cluster's ε accounting rests on (DESIGN.md §6).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Version is the current wire-format version. Bump it when the payload
// layout changes; decoders reject anything newer than what they know.
//
// Version history: 1 shipped raw arrival slices in every round directive;
// 2 added the shard-local data plane (generator specs, scale ranges,
// configure payloads, kept-row returns) with an incompatible layout;
// 3 added the fleet runtime (membership epochs in directives and reports,
// Hello/Join/Heartbeat ops, coordinator snapshots) and the GRR mechanism
// arity, again with an incompatible layout; 4 added the pipelined round
// schedule's combined ClassifyGenerate op (round r's threshold broadcast
// carrying round r+1's generator spec, so the two phases share one RTT);
// 5 added round tracing (the coordinator-minted Trace ID in every
// directive, echoed by reports) and per-phase worker timings in reports
// (GenerateNanos/SummarizeNanos/ClassifyNanos), so the coordinator can
// attribute round wall-clock to itself, the network, and each worker;
// 6 added per-core worker parallelism and the adaptive-ε focus window:
// generate directives may carry per-sub-shard seed slots (GenSpec.Subs)
// whose reports answer with per-sub percentile sums (Report.PctSums),
// directives carry the trim-threshold focus window
// (FocusPct/FocusWidth/FocusTighten) workers tighten their sketches
// around, and snapshots fingerprint SubShards and the focus knobs;
// 7 added the aggregator tier: a TreeInfo topology probe op, per-leaf
// dataset cuts on scale directives (Directive.Cuts), and subtree-shaped
// report fields (Leaves/Height/LostLeaves, concatenated per-leaf vector
// deltas in Vecs, and per-level merge timings in MergeNanos) so a report
// can stand for a whole subtree of worker slots instead of one worker;
// 8 moved the row game's kept pools worker-side: classify reports stop
// shipping per-round kept rows and instead carry per-leaf pool totals
// (Report.PoolRows), two ops page and roll back the pools at game end and
// resume (OpFetchRows with Directive.Leaf addressing, OpPoolTrim), and
// row-game snapshots (SnapRows) checkpoint O(1/ε) coordinator state —
// the robust-center vector sketch, the late-center delay line, and the
// per-leaf pool manifest — instead of any rows.
const Version = 8

// MinVersion is the oldest format this decoder still parses. Each version
// so far changed the protocol contract (layout, or — v4 — an op an older
// worker would reject mid-game), so its predecessor is retired: a
// mixed-version cluster fails loudly at the configure fan-out instead of
// misparsing or dying rounds later.
const MinVersion = 8

const (
	magic0 = 'T'
	magic1 = 'Q'

	headerSize = 4
)

// Kind tags the payload type carried after the header.
type Kind byte

// The message kinds. Summary through Directive shipped with format
// version 1; Snapshot (a checkpointed coordinator game state) with 3.
const (
	KindSummary   Kind = 1 // one quantile summary
	KindVector    Kind = 2 // per-coordinate summaries of a row stream
	KindReport    Kind = 3 // worker → coordinator shard report
	KindDirective Kind = 4 // coordinator → worker directive
	KindSnapshot  Kind = 5 // checkpointed coordinator game state
)

// Decode errors. Wrapped with context; test with errors.Is.
var (
	ErrTruncated = errors.New("wire: truncated payload")
	ErrMagic     = errors.New("wire: bad magic")
	ErrVersion   = errors.New("wire: unsupported version")
	ErrKind      = errors.New("wire: unexpected payload kind")
)

// appendHeader starts an encoded message.
func appendHeader(buf []byte, k Kind) []byte {
	return append(buf, magic0, magic1, Version, byte(k))
}

// checkHeader validates the four-byte header and returns the payload.
func checkHeader(buf []byte, want Kind) ([]byte, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte message is shorter than the header", ErrTruncated, len(buf))
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return nil, fmt.Errorf("%w: %#02x %#02x", ErrMagic, buf[0], buf[1])
	}
	if buf[2] > Version || buf[2] < MinVersion {
		return nil, fmt.Errorf("%w: message version %d, decoder supports %d–%d", ErrVersion, buf[2], MinVersion, Version)
	}
	if Kind(buf[3]) != want {
		return nil, fmt.Errorf("%w: kind %d, want %d", ErrKind, buf[3], want)
	}
	return buf[headerSize:], nil
}

// appendU32/appendU64/appendF64 write little-endian scalars.
func appendU32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
func appendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }
func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// reader is a bounds-checked little-endian cursor over a payload. The first
// failed read latches err; subsequent reads return zero values, so decoders
// can read a whole struct and check err once.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: reading %s at offset %d of %d", ErrTruncated, what, r.off, len(r.buf))
	}
}

func (r *reader) u8(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

// count reads a u32 element count and verifies the remaining payload can
// hold count elements of elemSize bytes, so corrupt counts fail with
// ErrTruncated instead of attempting a huge allocation.
func (r *reader) count(what string, elemSize int) int {
	n := int(r.u32(what))
	if r.err == nil && n*elemSize > len(r.buf)-r.off {
		r.fail(what + " elements")
	}
	if r.err != nil {
		return 0
	}
	return n
}

// finish rejects trailing bytes: a well-formed message is consumed exactly.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes after payload", len(r.buf)-r.off)
	}
	return nil
}

func (r *reader) f64s(what string) []float64 {
	n := r.count(what, 8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64(what)
	}
	return out
}

func appendF64s(buf []byte, vs []float64) []byte {
	buf = appendU32(buf, uint32(len(vs)))
	for _, v := range vs {
		buf = appendF64(buf, v)
	}
	return buf
}
