package dataset

import (
	"math"
	"math/rand"
)

// Letter's published shape: 20000 instances, 16 integer features in [0,15],
// 26 letter classes.
const (
	LetterSize     = 20000
	LetterFeatures = 16
	LetterClusters = 26
)

// Letter generates a stand-in for the UCI Letter Recognition dataset:
// 26 Gaussian classes in 16 dimensions, quantized to the integer grid
// [0, 15] exactly as the real data's pixel-statistics features are.
func Letter(rng *rand.Rand) *Dataset {
	return LetterN(rng, LetterSize)
}

// LetterN generates a Letter-style dataset with n instances.
func LetterN(rng *rand.Rand, n int) *Dataset {
	d := gaussianBlobs(rng, "LETTER", n, LetterFeatures, LetterClusters, 5, 1.8, nil)
	for _, row := range d.X {
		for j := range row {
			// Shift from [-5,5]-centered blobs onto the [0,15] grid.
			v := math.Round(row[j] + 7.5)
			if v < 0 {
				v = 0
			}
			if v > 15 {
				v = 15
			}
			row[j] = v
		}
	}
	return d
}
