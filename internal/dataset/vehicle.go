package dataset

import "math/rand"

// Vehicle's published shape in the paper's Table II: 752 instances,
// 18 silhouette features, 4 vehicle classes.
const (
	VehicleSize     = 752
	VehicleFeatures = 18
	VehicleClusters = 4
)

// Vehicle generates a stand-in for the UCI Statlog Vehicle Silhouettes
// dataset: 4 moderately-overlapping Gaussian classes in 18 dimensions. The
// real data consists of scaled shape moments in roughly [0, 1000]; the
// generator matches that range and the near-balanced class sizes.
func Vehicle(rng *rand.Rand) *Dataset {
	return VehicleN(rng, VehicleSize)
}

// VehicleN generates a Vehicle-style dataset with n instances.
func VehicleN(rng *rand.Rand, n int) *Dataset {
	// spread 250 around a 500 offset, sigma 60 ⇒ classes overlap but remain
	// separable, mimicking the silhouette-moment geometry.
	d := gaussianBlobs(rng, "VEHICLE", n, VehicleFeatures, VehicleClusters, 250, 60, nil)
	for _, row := range d.X {
		for j := range row {
			row[j] += 500
		}
	}
	return d
}
