package dataset

import (
	"math"
	"math/rand"

	"repro/internal/stats"
)

// Taxi's published shape: 1,048,575 pick-up times (seconds of day) in
// [0, 86340], normalized to [−1, 1].
const (
	TaxiSize   = 1048575
	TaxiMaxSec = 86340
)

// Taxi generates a stand-in for the January 2018 NYC taxi pick-up times:
// a mixture of a morning rush (~8am), an evening rush (~6-7pm), a late-night
// component and a uniform base rate, normalized to [−1, 1]. The generator
// reproduces the multi-modal, bounded, single-feature shape that the LDP
// experiment (Fig 9) depends on.
//
// The full paper-size dataset is ~8 MB of float64; TaxiN allows scaled-down
// variants for tests.
func Taxi(rng *rand.Rand) *Dataset {
	return TaxiN(rng, TaxiSize)
}

// TaxiN generates a Taxi-style dataset with n instances.
func TaxiN(rng *rand.Rand, n int) *Dataset {
	hour := 3600.0
	comps := []stats.MixtureComponent{
		{Weight: 0.25, Mu: 8 * hour, Sigma: 1.5 * hour},  // morning rush
		{Weight: 0.35, Mu: 18.5 * hour, Sigma: 2 * hour}, // evening rush
		{Weight: 0.15, Mu: 23 * hour, Sigma: 1.5 * hour}, // nightlife
		{Weight: 0.10, Mu: 13 * hour, Sigma: 2 * hour},   // midday
	}
	d := &Dataset{Name: "TAXI", Clusters: 1, X: make([][]float64, n)}
	for i := range d.X {
		var sec float64
		if rng.Float64() < 0.15 {
			sec = rng.Float64() * TaxiMaxSec // uniform base rate
		} else {
			sec = stats.Mixture(rng, comps)
		}
		// Wrap into the day and quantize to whole seconds like the source
		// data (pick-up timestamps have 1-second resolution).
		sec = math.Mod(sec, TaxiMaxSec)
		if sec < 0 {
			sec += TaxiMaxSec
		}
		sec = math.Floor(sec)
		d.X[i] = []float64{NormalizeTaxi(sec)}
	}
	return d
}

// NormalizeTaxi maps seconds-of-day in [0, TaxiMaxSec] to [−1, 1], the
// domain the paper's LDP mechanisms operate on.
func NormalizeTaxi(sec float64) float64 {
	return 2*sec/TaxiMaxSec - 1
}

// DenormalizeTaxi inverts NormalizeTaxi.
func DenormalizeTaxi(v float64) float64 {
	return (v + 1) / 2 * TaxiMaxSec
}
