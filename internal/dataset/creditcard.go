package dataset

import (
	"math/rand"

	"repro/internal/stats"
)

// Creditcard's published shape: 284,807 instances, 31 PCA-sanitized
// features. The paper's SOM experiment reads 4 classes out of it: the
// general public (the vast majority), isolated fraudulent and premium
// users, and a small "potential high-value" segment of a few points.
const (
	CreditcardSize     = 284807
	CreditcardFeatures = 31
	CreditcardClusters = 4
)

// Class indices for the Creditcard generator, mirroring the interpretation
// in the paper's Fig 6(b)/Fig 8 discussion.
const (
	CCPublic    = 0 // the general public — the dominant class
	CCFraud     = 1 // isolated fraudulent users, far from everything
	CCPremium   = 2 // isolated premium users, far from everything
	CCHighValue = 3 // small segment with high-value potential
)

// Creditcard generates a stand-in for the OpenML credit-card PCA dataset
// with the extreme class skew the SOM experiment depends on.
func Creditcard(rng *rand.Rand) *Dataset {
	return CreditcardN(rng, CreditcardSize)
}

// CreditcardN generates a Creditcard-style dataset with n instances
// (n ≥ 100 recommended so the small classes are populated).
func CreditcardN(rng *rand.Rand, n int) *Dataset {
	d := &Dataset{
		Name:     "CREDITCARD",
		Clusters: CreditcardClusters,
		X:        make([][]float64, 0, n),
		Y:        make([]int, 0, n),
	}

	// Tiny isolated classes with fixed size, matching the paper's reading
	// of the SOM map: two isolated points' worth of users and five green
	// points' worth of potential high-value customers.
	fraud := maxInt(1, n/2000)     // ≈0.05%, near the real 0.17% fraud rate
	premium := maxInt(1, n/2000)   //
	highValue := maxInt(5, n/1000) // the small distinct segment

	public := n - fraud - premium - highValue

	centers := map[int][]float64{
		CCPublic:    constantVec(CreditcardFeatures, 0),
		CCFraud:     constantVec(CreditcardFeatures, 12),  // far positive
		CCPremium:   constantVec(CreditcardFeatures, -12), // far negative
		CCHighValue: constantVec(CreditcardFeatures, 5),   // between public and extremes
	}
	sigma := map[int]float64{
		CCPublic:    1.0, // PCA components of the bulk are ≈ unit variance
		CCFraud:     0.8,
		CCPremium:   0.8,
		CCHighValue: 0.6,
	}
	counts := map[int]int{
		CCPublic:    public,
		CCFraud:     fraud,
		CCPremium:   premium,
		CCHighValue: highValue,
	}

	for class := 0; class < CreditcardClusters; class++ {
		c := centers[class]
		s := sigma[class]
		for i := 0; i < counts[class]; i++ {
			row := make([]float64, CreditcardFeatures)
			for j := range row {
				row[j] = stats.Normal(rng, c[j], s)
			}
			d.X = append(d.X, row)
			d.Y = append(d.Y, class)
		}
	}
	return d
}

func constantVec(dim int, v float64) []float64 {
	out := make([]float64, dim)
	for i := range out {
		out[i] = v
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
