package dataset

import (
	"math"
	"math/rand"
)

// ControlSize is the paper's instance count for the UCI Synthetic Control
// Chart dataset: 600 series of 60 points in 6 pattern classes.
const (
	ControlSize     = 600
	ControlFeatures = 60
	ControlClusters = 6
)

// Control generates the UCI Synthetic Control Chart Time Series dataset.
// Unlike the other four datasets this is not an approximation: UCI's data is
// itself synthetic, generated from the published formulas of Alcock &
// Manolopoulos (1999), which are reproduced here.
//
//	normal:          y(t) = m + r·s
//	cyclic:          y(t) = m + r·s + a·sin(2πt/T)
//	increasing:      y(t) = m + r·s + g·t
//	decreasing:      y(t) = m + r·s − g·t
//	upward shift:    y(t) = m + r·s + k·x
//	downward shift:  y(t) = m + r·s − k·x
//
// with m = 30, s = 2, r ∈ U(−3,3), a,T ∈ U(10,15), g ∈ U(0.2,0.5),
// x ∈ U(7.5,20) and k switching from 0 to 1 at a change point in the middle
// third of the series. 100 series are drawn per class.
func Control(rng *rand.Rand) *Dataset {
	return ControlN(rng, ControlSize)
}

// ControlN generates a Control-style dataset with n instances (n is rounded
// down to a multiple of the 6 classes).
func ControlN(rng *rand.Rand, n int) *Dataset {
	perClass := n / ControlClusters
	if perClass < 1 {
		perClass = 1
	}
	d := &Dataset{
		Name:     "CONTROL",
		Clusters: ControlClusters,
		X:        make([][]float64, 0, perClass*ControlClusters),
		Y:        make([]int, 0, perClass*ControlClusters),
	}
	const (
		m = 30.0
		s = 2.0
		T = float64(ControlFeatures)
	)
	for class := 0; class < ControlClusters; class++ {
		for i := 0; i < perClass; i++ {
			row := make([]float64, ControlFeatures)
			a := 10 + 5*rng.Float64()      // cyclic amplitude
			period := 10 + 5*rng.Float64() // cyclic period
			g := 0.2 + 0.3*rng.Float64()   // trend gradient
			x := 7.5 + 12.5*rng.Float64()  // shift magnitude
			t3 := T/3 + rng.Float64()*T/3  // change point in middle third
			for t := 0; t < ControlFeatures; t++ {
				r := -3 + 6*rng.Float64()
				y := m + r*s
				ft := float64(t)
				switch class {
				case 0: // normal
				case 1: // cyclic
					y += a * math.Sin(2*math.Pi*ft/period)
				case 2: // increasing trend
					y += g * ft
				case 3: // decreasing trend
					y -= g * ft
				case 4: // upward shift
					if ft >= t3 {
						y += x
					}
				case 5: // downward shift
					if ft >= t3 {
						y -= x
					}
				}
				row[t] = y
			}
			d.X = append(d.X, row)
			d.Y = append(d.Y, class)
		}
	}
	return d
}
