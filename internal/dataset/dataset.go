// Package dataset provides the five evaluation datasets of the paper
// (Control, Vehicle, Letter, Taxi, Creditcard) as deterministic synthetic
// generators plus CSV I/O so that the real files can be dropped in.
//
// The paper's experiments act on *percentiles* of a numeric view of the data
// (poison values are injected at a percentile; trimming removes everything
// above a percentile), so the generators are designed to reproduce each
// dataset's published shape: instance count, feature count, cluster
// structure, value ranges and skew. See DESIGN.md §2 for the substitution
// argument.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
)

// Dataset is an in-memory numeric dataset with optional labels.
type Dataset struct {
	Name     string
	X        [][]float64 // instances × features
	Y        []int       // per-instance label; nil when unlabeled
	Clusters int         // number of classes/clusters the paper reports
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the number of features, 0 for an empty dataset.
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Labeled reports whether the dataset carries labels.
func (d *Dataset) Labeled() bool { return d.Y != nil }

// Validate checks structural invariants: rectangular X, matching Y length,
// finite values.
func (d *Dataset) Validate() error {
	dim := d.Dim()
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("dataset %s: row %d has %d features, want %d", d.Name, i, len(row), dim)
		}
		if !stats.IsFiniteSlice(row) {
			return fmt.Errorf("dataset %s: row %d contains NaN/Inf", d.Name, i)
		}
	}
	if d.Y != nil && len(d.Y) != len(d.X) {
		return fmt.Errorf("dataset %s: %d labels for %d instances", d.Name, len(d.Y), len(d.X))
	}
	return nil
}

// Centroid returns the global mean vector of the dataset.
func (d *Dataset) Centroid() ([]float64, error) {
	return stats.MeanVector(d.X)
}

// Distances returns, for every instance, its Euclidean distance from the
// global centroid. This scalar view is the quantity the collection game
// trims on: the paper's distance-based sanitization removes any point with
// d_i above a threshold, and both injection and trimming positions are
// expressed as percentiles of this distribution.
func (d *Dataset) Distances() ([]float64, error) {
	c, err := d.Centroid()
	if err != nil {
		return nil, err
	}
	ds := make([]float64, len(d.X))
	for i, row := range d.X {
		ds[i] = stats.Euclidean(row, c)
	}
	return ds, nil
}

// Sample returns a new dataset of n instances drawn without replacement
// (n ≤ Len) using rng. Labels travel with their rows.
func (d *Dataset) Sample(rng *rand.Rand, n int) (*Dataset, error) {
	if n > d.Len() {
		return nil, fmt.Errorf("dataset %s: sample %d > %d instances", d.Name, n, d.Len())
	}
	idx := stats.SampleWithout(rng, d.Len(), n)
	out := &Dataset{Name: d.Name, Clusters: d.Clusters, X: make([][]float64, n)}
	if d.Y != nil {
		out.Y = make([]int, n)
	}
	for i, j := range idx {
		out.X[i] = append([]float64(nil), d.X[j]...)
		if d.Y != nil {
			out.Y[i] = d.Y[j]
		}
	}
	return out, nil
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Clusters: d.Clusters, X: make([][]float64, len(d.X))}
	for i, row := range d.X {
		out.X[i] = append([]float64(nil), row...)
	}
	if d.Y != nil {
		out.Y = append([]int(nil), d.Y...)
	}
	return out
}

// Append adds rows (and labels, when both sides are labeled) from other.
func (d *Dataset) Append(other *Dataset) error {
	if other.Len() == 0 {
		return nil
	}
	if d.Dim() != 0 && other.Dim() != d.Dim() {
		return fmt.Errorf("dataset %s: append dim %d onto %d", d.Name, other.Dim(), d.Dim())
	}
	d.X = append(d.X, other.X...)
	if d.Y != nil {
		if other.Y == nil {
			return fmt.Errorf("dataset %s: appending unlabeled rows to labeled dataset", d.Name)
		}
		d.Y = append(d.Y, other.Y...)
	}
	return nil
}

// Column extracts feature j as a fresh slice.
func (d *Dataset) Column(j int) ([]float64, error) {
	if j < 0 || j >= d.Dim() {
		return nil, fmt.Errorf("dataset %s: column %d out of %d", d.Name, j, d.Dim())
	}
	col := make([]float64, len(d.X))
	for i, row := range d.X {
		col[i] = row[j]
	}
	return col, nil
}

// Info is one row of the paper's Table II.
type Info struct {
	Name      string
	Instances int
	Features  int
	Clusters  int
}

// Summary returns the dataset's Table II row.
func (d *Dataset) Summary() Info {
	return Info{Name: d.Name, Instances: d.Len(), Features: d.Dim(), Clusters: d.Clusters}
}
