package dataset

import (
	"math/rand"

	"repro/internal/stats"
)

// gaussianBlobs builds a labeled Gaussian-mixture dataset: `clusters`
// cluster centers are drawn in random directions at a common radius
// `spread` from the origin, then rows are sampled around their center with
// the given per-cluster sigma. Cluster sizes follow weights (proportional;
// need not sum to 1). It is the common machinery behind the Vehicle and
// Letter generators.
//
// Centers sit on a common sphere deliberately: every class then contributes
// the same distance-from-center profile, so the top distance percentiles
// are each class's sparse noise tail rather than one entire outlying class.
// This matches the role the real datasets play in the paper's experiments —
// distance-based trimming there shaves all classes uniformly instead of
// deleting one.
func gaussianBlobs(rng *rand.Rand, name string, n, dim, clusters int, spread, sigma float64, weights []float64) *Dataset {
	if weights == nil {
		weights = make([]float64, clusters)
		for i := range weights {
			weights[i] = 1
		}
	}
	var totalW float64
	for _, w := range weights {
		totalW += w
	}

	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		var norm float64
		for norm == 0 {
			for j := range centers[c] {
				centers[c][j] = rng.NormFloat64()
			}
			norm = stats.Norm(centers[c])
		}
		stats.Scale(centers[c], spread/norm)
	}

	d := &Dataset{
		Name:     name,
		Clusters: clusters,
		X:        make([][]float64, 0, n),
		Y:        make([]int, 0, n),
	}
	// Deterministic allocation of rows to clusters by weight, remainder to
	// the largest cluster, so instance counts match the paper's exactly.
	counts := make([]int, clusters)
	assigned := 0
	largest := 0
	for c, w := range weights {
		counts[c] = int(float64(n) * w / totalW)
		assigned += counts[c]
		if w > weights[largest] {
			largest = c
		}
	}
	counts[largest] += n - assigned

	for c := 0; c < clusters; c++ {
		for i := 0; i < counts[c]; i++ {
			row := make([]float64, dim)
			for j := range row {
				row[j] = stats.Normal(rng, centers[c][j], sigma)
			}
			d.X = append(d.X, row)
			d.Y = append(d.Y, c)
		}
	}
	return d
}
