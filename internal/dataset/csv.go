package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the dataset. Each record is the feature values
// followed, for labeled datasets, by the integer label in the last column.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	dim := d.Dim()
	rec := make([]string, dim, dim+1)
	for i, row := range d.X {
		rec = rec[:dim]
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if d.Y != nil {
			rec = append(rec, strconv.Itoa(d.Y[i]))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset %s: write row %d: %w", d.Name, i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or a real dataset exported
// to the same shape). When labeled is true the last column is read as an
// integer class label.
func ReadCSV(r io.Reader, name string, labeled bool, clusters int) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better error message
	d := &Dataset{Name: name, Clusters: clusters}
	if labeled {
		d.Y = []int{}
	}
	dim := -1
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset %s: read row %d: %w", name, i, err)
		}
		nf := len(rec)
		if labeled {
			nf--
		}
		if nf < 1 {
			return nil, fmt.Errorf("dataset %s: row %d has no features", name, i)
		}
		if dim == -1 {
			dim = nf
		} else if nf != dim {
			return nil, fmt.Errorf("dataset %s: row %d has %d features, want %d", name, i, nf, dim)
		}
		row := make([]float64, dim)
		for j := 0; j < dim; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset %s: row %d col %d: %w", name, i, j, err)
			}
			row[j] = v
		}
		d.X = append(d.X, row)
		if labeled {
			label, err := strconv.Atoi(rec[dim])
			if err != nil {
				return nil, fmt.Errorf("dataset %s: row %d label: %w", name, i, err)
			}
			d.Y = append(d.Y, label)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
