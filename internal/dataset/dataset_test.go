package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestControlShape(t *testing.T) {
	d := Control(stats.NewRand(1))
	if d.Len() != ControlSize {
		t.Errorf("Control instances = %d, want %d", d.Len(), ControlSize)
	}
	if d.Dim() != ControlFeatures {
		t.Errorf("Control features = %d, want %d", d.Dim(), ControlFeatures)
	}
	if d.Clusters != 6 {
		t.Errorf("Control clusters = %d, want 6", d.Clusters)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// 100 per class.
	counts := map[int]int{}
	for _, y := range d.Y {
		counts[y]++
	}
	for c := 0; c < 6; c++ {
		if counts[c] != 100 {
			t.Errorf("class %d has %d instances, want 100", c, counts[c])
		}
	}
}

func TestControlClassStructure(t *testing.T) {
	d := Control(stats.NewRand(2))
	// Increasing-trend series (class 2) must end higher than they start on
	// average; decreasing (class 3) must end lower.
	var incDelta, decDelta float64
	var nInc, nDec int
	for i, row := range d.X {
		delta := row[len(row)-1] - row[0]
		switch d.Y[i] {
		case 2:
			incDelta += delta
			nInc++
		case 3:
			decDelta += delta
			nDec++
		}
	}
	if incDelta/float64(nInc) < 5 {
		t.Errorf("increasing class mean delta = %v, want strongly positive", incDelta/float64(nInc))
	}
	if decDelta/float64(nDec) > -5 {
		t.Errorf("decreasing class mean delta = %v, want strongly negative", decDelta/float64(nDec))
	}
}

func TestVehicleShape(t *testing.T) {
	d := Vehicle(stats.NewRand(3))
	s := d.Summary()
	if s.Instances != 752 || s.Features != 18 || s.Clusters != 4 {
		t.Errorf("Vehicle summary = %+v", s)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLetterShape(t *testing.T) {
	d := LetterN(stats.NewRand(4), 2600)
	if d.Len() != 2600 || d.Dim() != 16 || d.Clusters != 26 {
		t.Errorf("Letter shape = %d×%d, %d clusters", d.Len(), d.Dim(), d.Clusters)
	}
	// Features must sit on the integer grid [0, 15].
	for _, row := range d.X {
		for _, v := range row {
			if v < 0 || v > 15 || v != math.Trunc(v) {
				t.Fatalf("Letter feature %v outside integer grid [0,15]", v)
			}
		}
	}
}

func TestTaxiShape(t *testing.T) {
	d := TaxiN(stats.NewRand(5), 50000)
	if d.Len() != 50000 || d.Dim() != 1 {
		t.Errorf("Taxi shape = %d×%d", d.Len(), d.Dim())
	}
	for _, row := range d.X {
		if row[0] < -1 || row[0] > 1 {
			t.Fatalf("Taxi value %v outside [-1,1]", row[0])
		}
	}
	// Multi-modality: evening rush (~18.5h ⇒ ≈0.54 normalized) should be a
	// denser region than early morning (~4h ⇒ ≈ -0.67).
	col, _ := d.Column(0)
	h, err := stats.FromSamples(col, -1, 1, 48)
	if err != nil {
		t.Fatal(err)
	}
	evening := h.Counts[h.BinOf(0.54)]
	earlyAM := h.Counts[h.BinOf(-0.67)]
	if evening <= earlyAM {
		t.Errorf("evening density %v not above early-morning %v", evening, earlyAM)
	}
}

func TestTaxiNormalization(t *testing.T) {
	if got := NormalizeTaxi(0); got != -1 {
		t.Errorf("NormalizeTaxi(0) = %v", got)
	}
	if got := NormalizeTaxi(TaxiMaxSec); got != 1 {
		t.Errorf("NormalizeTaxi(max) = %v", got)
	}
	for _, sec := range []float64{0, 1000, 43170, 86340} {
		if got := DenormalizeTaxi(NormalizeTaxi(sec)); math.Abs(got-sec) > 1e-9 {
			t.Errorf("roundtrip(%v) = %v", sec, got)
		}
	}
}

func TestCreditcardShape(t *testing.T) {
	d := CreditcardN(stats.NewRand(6), 20000)
	if d.Len() != 20000 || d.Dim() != 31 || d.Clusters != 4 {
		t.Errorf("Creditcard shape = %d×%d, %d clusters", d.Len(), d.Dim(), d.Clusters)
	}
	counts := map[int]int{}
	for _, y := range d.Y {
		counts[y]++
	}
	if counts[CCPublic] < 19000 {
		t.Errorf("public class %d, want dominant (>19000)", counts[CCPublic])
	}
	for _, c := range []int{CCFraud, CCPremium, CCHighValue} {
		if counts[c] == 0 {
			t.Errorf("class %d is empty", c)
		}
		if counts[c] > 100 {
			t.Errorf("class %d has %d instances, should be tiny", c, counts[c])
		}
	}
}

func TestCreditcardIsolation(t *testing.T) {
	d := CreditcardN(stats.NewRand(7), 5000)
	// Fraud and premium centroids must be far from the public centroid.
	centByClass := map[int][]float64{}
	nByClass := map[int]int{}
	for i, row := range d.X {
		c := d.Y[i]
		if centByClass[c] == nil {
			centByClass[c] = make([]float64, d.Dim())
		}
		stats.AddInPlace(centByClass[c], row)
		nByClass[c]++
	}
	for c, v := range centByClass {
		stats.Scale(v, 1/float64(nByClass[c]))
	}
	dFraud := stats.Euclidean(centByClass[CCFraud], centByClass[CCPublic])
	dPremium := stats.Euclidean(centByClass[CCPremium], centByClass[CCPublic])
	if dFraud < 30 || dPremium < 30 {
		t.Errorf("fraud/premium not isolated: %v, %v", dFraud, dPremium)
	}
}

func TestSummaryTableII(t *testing.T) {
	rng := stats.NewRand(8)
	want := []Info{
		{"CONTROL", 600, 60, 6},
		{"VEHICLE", 752, 18, 4},
		{"LETTER", 20000, 16, 26},
		{"TAXI", 1048575, 1, 1},
		{"CREDITCARD", 284807, 31, 4},
	}
	got := []Info{
		Control(rng).Summary(),
		Vehicle(rng).Summary(),
		LetterN(rng, LetterSize).Summary(),
		// Constructed at full scale but with cheap shortcuts below to keep
		// the test fast — Taxi and Creditcard sizes checked via constants.
	}
	for i, w := range got {
		if w != want[i] {
			t.Errorf("Table II row %d = %+v, want %+v", i, w, want[i])
		}
	}
	if TaxiSize != want[3].Instances || CreditcardSize != want[4].Instances {
		t.Error("full-size constants diverge from Table II")
	}
}

func TestSampleCloneAppendColumn(t *testing.T) {
	d := VehicleN(stats.NewRand(9), 100)
	s, err := d.Sample(stats.NewRand(10), 40)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 40 || s.Dim() != d.Dim() || len(s.Y) != 40 {
		t.Errorf("Sample shape %d×%d labels %d", s.Len(), s.Dim(), len(s.Y))
	}
	if _, err := d.Sample(stats.NewRand(1), 1000); err == nil {
		t.Error("oversample should error")
	}

	c := d.Clone()
	c.X[0][0] = 1e9
	if d.X[0][0] == 1e9 {
		t.Error("Clone is shallow")
	}

	if err := d.Append(s); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 140 {
		t.Errorf("Append len = %d, want 140", d.Len())
	}
	bad := &Dataset{Name: "bad", X: [][]float64{{1, 2}}}
	if err := d.Append(bad); err == nil {
		t.Error("dim-mismatch append should error")
	}

	col, err := d.Column(0)
	if err != nil || len(col) != 140 {
		t.Errorf("Column = %d values, err %v", len(col), err)
	}
	if _, err := d.Column(99); err == nil {
		t.Error("out-of-range column should error")
	}
}

func TestDistances(t *testing.T) {
	d := &Dataset{Name: "toy", X: [][]float64{{0, 0}, {4, 0}, {0, 4}, {4, 4}}}
	ds, err := d.Distances()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(8) // centroid (2,2), all corners at distance 2√2
	for i, v := range ds {
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("distance[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	d := &Dataset{Name: "bad", X: [][]float64{{1, 2}, {3}}}
	if err := d.Validate(); err == nil {
		t.Error("ragged rows should fail validation")
	}
	d2 := &Dataset{Name: "bad2", X: [][]float64{{math.NaN()}}}
	if err := d2.Validate(); err == nil {
		t.Error("NaN should fail validation")
	}
	d3 := &Dataset{Name: "bad3", X: [][]float64{{1}}, Y: []int{0, 1}}
	if err := d3.Validate(); err == nil {
		t.Error("label-length mismatch should fail validation")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	d := VehicleN(stats.NewRand(11), 25)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "VEHICLE", true, 4)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Dim() != d.Dim() {
		t.Fatalf("roundtrip shape %d×%d", back.Len(), back.Dim())
	}
	for i := range d.X {
		if back.Y[i] != d.Y[i] {
			t.Fatalf("label[%d] = %d, want %d", i, back.Y[i], d.Y[i])
		}
		for j := range d.X[i] {
			if back.X[i][j] != d.X[i][j] {
				t.Fatalf("X[%d][%d] = %v, want %v", i, j, back.X[i][j], d.X[i][j])
			}
		}
	}
}

func TestCSVUnlabeledRoundtrip(t *testing.T) {
	d := TaxiN(stats.NewRand(12), 10)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "TAXI", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Labeled() {
		t.Error("unlabeled roundtrip grew labels")
	}
	if back.Len() != 10 {
		t.Errorf("len = %d", back.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, body string
		labeled    bool
	}{
		{"ragged", "1,2\n1\n", false},
		{"badfloat", "1,x\n", false},
		{"badlabel", "1,2,x\n", true},
		{"nofeatures", "7\n", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.body), "t", c.labeled, 1); err == nil {
				t.Errorf("ReadCSV(%q) should error", c.body)
			}
		})
	}
}

func TestGaussianBlobsWeighted(t *testing.T) {
	d := gaussianBlobs(stats.NewRand(13), "w", 100, 2, 2, 10, 1, []float64{9, 1})
	counts := map[int]int{}
	for _, y := range d.Y {
		counts[y]++
	}
	if counts[0] != 90 || counts[1] != 10 {
		t.Errorf("weighted counts = %v, want 90/10", counts)
	}
	if d.Len() != 100 {
		t.Errorf("total = %d", d.Len())
	}
}
