// Package som implements a Kohonen self-organizing map, the third ML
// consumer of the paper's evaluation (Fig 6(b)/Fig 8). The paper trains a
// 20×20 map on the Creditcard dataset and reads class structure off the
// U-matrix (inter-neuron distances); this implementation reproduces the
// map, the U-matrix and the quantization error used to compare schemes.
package som

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// Map is a rectangular self-organizing map of Rows×Cols neurons, each with a
// weight vector of dimension Dim.
type Map struct {
	Rows, Cols int
	Dim        int
	Weights    [][]float64 // (Rows*Cols) × Dim, row-major
}

// Config controls training.
type Config struct {
	Rows, Cols int     // map size; the paper uses 20×20
	Epochs     int     // default 10
	LearnRate  float64 // initial learning rate, default 0.5
	Radius     float64 // initial neighbourhood radius, default max(Rows,Cols)/2
}

func (c *Config) setDefaults() {
	if c.Rows <= 0 {
		c.Rows = 20
	}
	if c.Cols <= 0 {
		c.Cols = 20
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.5
	}
	if c.Radius <= 0 {
		c.Radius = float64(maxInt(c.Rows, c.Cols)) / 2
	}
}

// Train fits a SOM to rows.
func Train(rng *rand.Rand, rows [][]float64, cfg Config) (*Map, error) {
	cfg.setDefaults()
	if len(rows) == 0 {
		return nil, fmt.Errorf("som: no training rows")
	}
	dim := len(rows[0])
	m := &Map{Rows: cfg.Rows, Cols: cfg.Cols, Dim: dim}
	m.Weights = make([][]float64, cfg.Rows*cfg.Cols)
	// Initialize neuron weights by sampling training rows: keeps the map in
	// the data's subspace, which converges much faster than random init.
	for i := range m.Weights {
		src := rows[rng.Intn(len(rows))]
		w := append([]float64(nil), src...)
		for j := range w {
			w[j] += stats.Normal(rng, 0, 1e-3)
		}
		m.Weights[i] = w
	}

	totalSteps := cfg.Epochs * len(rows)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(rows))
		for _, i := range perm {
			x := rows[i]
			frac := float64(step) / float64(totalSteps)
			lr := cfg.LearnRate * math.Exp(-3*frac)
			radius := cfg.Radius * math.Exp(-3*frac)
			if radius < 0.5 {
				radius = 0.5
			}
			bmu := m.BMU(x)
			br, bc := bmu/m.Cols, bmu%m.Cols
			// Update neurons within ~3 radii of the BMU.
			reach := int(radius*3) + 1
			for r := maxInt(0, br-reach); r <= minInt(m.Rows-1, br+reach); r++ {
				for c := maxInt(0, bc-reach); c <= minInt(m.Cols-1, bc+reach); c++ {
					dr, dc := float64(r-br), float64(c-bc)
					grid2 := dr*dr + dc*dc
					h := math.Exp(-grid2 / (2 * radius * radius))
					if h < 1e-4 {
						continue
					}
					w := m.Weights[r*m.Cols+c]
					for j := range w {
						w[j] += lr * h * (x[j] - w[j])
					}
				}
			}
			step++
		}
	}
	return m, nil
}

// BMU returns the index of the best-matching unit for x.
func (m *Map) BMU(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for i, w := range m.Weights {
		if d := stats.SquaredEuclidean(x, w); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// QuantizationError returns the mean distance from each row to its BMU —
// the scalar map-quality measure used to compare schemes in Fig 8.
func (m *Map) QuantizationError(rows [][]float64) float64 {
	if len(rows) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range rows {
		s += stats.Euclidean(x, m.Weights[m.BMU(x)])
	}
	return s / float64(len(rows))
}

// UMatrix returns the unified distance matrix: for each neuron, the mean
// Euclidean distance to its 4-connected grid neighbours. Large values mark
// cluster boundaries — the "color depth" of the paper's SOM figures.
func (m *Map) UMatrix() [][]float64 {
	u := make([][]float64, m.Rows)
	for r := range u {
		u[r] = make([]float64, m.Cols)
		for c := range u[r] {
			w := m.Weights[r*m.Cols+c]
			var sum float64
			var n int
			for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := r+d[0], c+d[1]
				if nr < 0 || nr >= m.Rows || nc < 0 || nc >= m.Cols {
					continue
				}
				sum += stats.Euclidean(w, m.Weights[nr*m.Cols+nc])
				n++
			}
			u[r][c] = sum / float64(n)
		}
	}
	return u
}

// HitMap returns, for each neuron, how many of rows map to it.
func (m *Map) HitMap(rows [][]float64) []int {
	hits := make([]int, len(m.Weights))
	for _, x := range rows {
		hits[m.BMU(x)]++
	}
	return hits
}

// ClassIslands summarises how a labeled dataset lands on the map: for each
// class, the number of distinct neurons it occupies and the mean pairwise
// grid distance between its BMUs and the dominant class's BMUs. Fig 8's
// qualitative reading ("isolated points", "green class preserved") becomes
// quantitative through this summary.
type ClassIsland struct {
	Class        int
	Neurons      int     // distinct BMUs occupied by the class
	Hits         int     // instances of the class
	GridDistance float64 // mean grid distance from class BMUs to the dominant class's BMUs
}

// ClassIslands computes the per-class summary. labels must parallel rows.
func (m *Map) ClassIslands(rows [][]float64, labels []int, classes int) ([]ClassIsland, error) {
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("som: %d rows but %d labels", len(rows), len(labels))
	}
	bmusByClass := make([]map[int]int, classes)
	for c := range bmusByClass {
		bmusByClass[c] = map[int]int{}
	}
	counts := make([]int, classes)
	for i, x := range rows {
		y := labels[i]
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("som: label %d outside [0,%d)", y, classes)
		}
		bmusByClass[y][m.BMU(x)]++
		counts[y]++
	}
	dominant := 0
	for c := range counts {
		if counts[c] > counts[dominant] {
			dominant = c
		}
	}
	out := make([]ClassIsland, classes)
	for c := 0; c < classes; c++ {
		isl := ClassIsland{Class: c, Neurons: len(bmusByClass[c]), Hits: counts[c]}
		if c != dominant && len(bmusByClass[c]) > 0 && len(bmusByClass[dominant]) > 0 {
			var sum float64
			var n int
			for b1 := range bmusByClass[c] {
				r1, c1 := b1/m.Cols, b1%m.Cols
				for b2 := range bmusByClass[dominant] {
					r2, c2 := b2/m.Cols, b2%m.Cols
					dr, dc := float64(r1-r2), float64(c1-c2)
					sum += math.Sqrt(dr*dr + dc*dc)
					n++
				}
			}
			isl.GridDistance = sum / float64(n)
		}
		out[c] = isl
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
