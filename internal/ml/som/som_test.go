package som

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func twoBlobs(seed int64, n int) ([][]float64, []int) {
	rng := stats.NewRand(seed)
	rows := make([][]float64, 0, n)
	labels := make([]int, 0, n)
	for i := 0; i < n; i++ {
		c := i % 2
		mu := -5.0
		if c == 1 {
			mu = 5
		}
		rows = append(rows, []float64{stats.Normal(rng, mu, 0.5), stats.Normal(rng, mu, 0.5)})
		labels = append(labels, c)
	}
	return rows, labels
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(stats.NewRand(1), nil, Config{}); err == nil {
		t.Error("empty rows should error")
	}
}

func TestTrainDefaults(t *testing.T) {
	rows, _ := twoBlobs(1, 50)
	m, err := Train(stats.NewRand(2), rows, Config{Rows: 4, Cols: 4, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 4 || m.Cols != 4 || m.Dim != 2 || len(m.Weights) != 16 {
		t.Errorf("map shape %d×%d dim %d weights %d", m.Rows, m.Cols, m.Dim, len(m.Weights))
	}
}

func TestQuantizationErrorDecreasesWithTraining(t *testing.T) {
	rows, _ := twoBlobs(3, 200)
	short, err := Train(stats.NewRand(4), rows, Config{Rows: 6, Cols: 6, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Train(stats.NewRand(4), rows, Config{Rows: 6, Cols: 6, Epochs: 12})
	if err != nil {
		t.Fatal(err)
	}
	qeShort := short.QuantizationError(rows)
	qeLong := long.QuantizationError(rows)
	if qeLong > qeShort*1.5 {
		t.Errorf("long training QE %v much worse than short %v", qeLong, qeShort)
	}
	if qeLong <= 0 || math.IsNaN(qeLong) {
		t.Errorf("QE = %v", qeLong)
	}
	if !math.IsNaN(long.QuantizationError(nil)) {
		t.Error("QE(empty) should be NaN")
	}
}

func TestBMUConsistency(t *testing.T) {
	rows, _ := twoBlobs(5, 100)
	m, err := Train(stats.NewRand(6), rows, Config{Rows: 5, Cols: 5, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range rows[:10] {
		b := m.BMU(x)
		d := stats.SquaredEuclidean(x, m.Weights[b])
		for _, w := range m.Weights {
			if stats.SquaredEuclidean(x, w) < d-1e-12 {
				t.Fatal("BMU is not the nearest neuron")
			}
		}
	}
}

func TestTopologyPreservation(t *testing.T) {
	// Two far-apart blobs should map to far-apart map regions.
	rows, labels := twoBlobs(7, 400)
	m, err := Train(stats.NewRand(8), rows, Config{Rows: 8, Cols: 8, Epochs: 8})
	if err != nil {
		t.Fatal(err)
	}
	var r0, c0, r1, c1, n0, n1 float64
	for i, x := range rows {
		b := m.BMU(x)
		r, c := float64(b/m.Cols), float64(b%m.Cols)
		if labels[i] == 0 {
			r0 += r
			c0 += c
			n0++
		} else {
			r1 += r
			c1 += c
			n1++
		}
	}
	dr, dc := r0/n0-r1/n1, c0/n0-c1/n1
	gridDist := math.Sqrt(dr*dr + dc*dc)
	if gridDist < 2 {
		t.Errorf("classes land %v apart on an 8×8 grid; want ≥2", gridDist)
	}
}

func TestUMatrixShapeAndBoundary(t *testing.T) {
	rows, _ := twoBlobs(9, 300)
	m, err := Train(stats.NewRand(10), rows, Config{Rows: 8, Cols: 8, Epochs: 8})
	if err != nil {
		t.Fatal(err)
	}
	u := m.UMatrix()
	if len(u) != 8 || len(u[0]) != 8 {
		t.Fatalf("UMatrix shape %d×%d", len(u), len(u[0]))
	}
	var mx, mn float64 = 0, math.Inf(1)
	for _, row := range u {
		for _, v := range row {
			if v > mx {
				mx = v
			}
			if v < mn {
				mn = v
			}
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("invalid U-matrix entry %v", v)
			}
		}
	}
	// A two-cluster dataset must produce a visible ridge: max clearly above min.
	if mx < 2*mn {
		t.Errorf("U-matrix ridge absent: max %v, min %v", mx, mn)
	}
}

func TestHitMap(t *testing.T) {
	rows, _ := twoBlobs(11, 60)
	m, err := Train(stats.NewRand(12), rows, Config{Rows: 4, Cols: 4, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	hits := m.HitMap(rows)
	var total int
	for _, h := range hits {
		total += h
	}
	if total != 60 {
		t.Errorf("hit map total = %d, want 60", total)
	}
}

func TestClassIslands(t *testing.T) {
	rows, labels := twoBlobs(13, 200)
	m, err := Train(stats.NewRand(14), rows, Config{Rows: 6, Cols: 6, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	islands, err := m.ClassIslands(rows, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(islands) != 2 {
		t.Fatalf("%d islands", len(islands))
	}
	for _, isl := range islands {
		if isl.Hits != 100 {
			t.Errorf("class %d hits = %d, want 100", isl.Class, isl.Hits)
		}
		if isl.Neurons == 0 {
			t.Errorf("class %d occupies no neurons", isl.Class)
		}
	}
	if _, err := m.ClassIslands(rows, labels[:10], 2); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := m.ClassIslands(rows, labels, 1); err == nil {
		t.Error("label outside class range should error")
	}
}

func TestOnCreditcard(t *testing.T) {
	if testing.Short() {
		t.Skip("SOM on Creditcard sample is slow for -short")
	}
	d := dataset.CreditcardN(stats.NewRand(15), 2000)
	m, err := Train(stats.NewRand(16), d.X, Config{Rows: 10, Cols: 10, Epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	islands, err := m.ClassIslands(d.X, d.Y, d.Clusters)
	if err != nil {
		t.Fatal(err)
	}
	// Fraud and premium users must be isolated: far on the grid from the
	// dominant public class.
	for _, c := range []int{dataset.CCFraud, dataset.CCPremium} {
		if islands[c].Hits == 0 {
			t.Fatalf("class %d missing from sample", c)
		}
		if islands[c].GridDistance < 1.5 {
			t.Errorf("class %d grid distance = %v, want isolated (≥1.5)",
				c, islands[c].GridDistance)
		}
	}
}
