package svm

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// separable2D builds a linearly separable binary problem.
func separable2D(seed int64, n int) (rows [][]float64, labels []int) {
	rng := stats.NewRand(seed)
	for i := 0; i < n; i++ {
		y := 1
		cx, cy := 3.0, 3.0
		if i%2 == 0 {
			y = -1
			cx, cy = -3.0, -3.0
		}
		rows = append(rows, []float64{stats.Normal(rng, cx, 0.5), stats.Normal(rng, cy, 0.5)})
		labels = append(labels, y)
	}
	return rows, labels
}

func TestTrainBinarySeparable(t *testing.T) {
	rows, labels := separable2D(1, 200)
	m, err := TrainBinary(stats.NewRand(2), rows, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	miss := 0
	for i, x := range rows {
		if m.Predict(x) != labels[i] {
			miss++
		}
	}
	if miss > 2 {
		t.Errorf("%d/200 misclassified on separable data", miss)
	}
}

func TestTrainBinaryValidation(t *testing.T) {
	if _, err := TrainBinary(stats.NewRand(1), nil, nil, Config{}); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := TrainBinary(stats.NewRand(1), [][]float64{{1}}, []int{0}, Config{}); err == nil {
		t.Error("non ±1 label should error")
	}
	if _, err := TrainBinary(stats.NewRand(1), [][]float64{{1}}, []int{1, 1}, Config{}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestDecisionSign(t *testing.T) {
	m := &Model{W: []float64{1, 0}, B: -2}
	if m.Predict([]float64{3, 0}) != 1 {
		t.Error("positive side misclassified")
	}
	if m.Predict([]float64{1, 0}) != -1 {
		t.Error("negative side misclassified")
	}
	if got := m.Decision([]float64{5, 7}); got != 3 {
		t.Errorf("Decision = %v, want 3", got)
	}
}

func TestMulticlassValidation(t *testing.T) {
	rows := [][]float64{{1}, {2}}
	if _, err := Train(stats.NewRand(1), rows, []int{0, 1}, 1, Config{}); err == nil {
		t.Error("classes<2 should error")
	}
	if _, err := Train(stats.NewRand(1), rows, []int{0, 5}, 3, Config{}); err == nil {
		t.Error("out-of-range label should error")
	}
	if _, err := Train(stats.NewRand(1), rows, []int{0}, 2, Config{}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestMulticlassThreeBlobs(t *testing.T) {
	rng := stats.NewRand(3)
	var rows [][]float64
	var labels []int
	centers := [][]float64{{0, 8}, {8, -4}, {-8, -4}}
	for c, cent := range centers {
		for i := 0; i < 100; i++ {
			rows = append(rows, []float64{
				stats.Normal(rng, cent[0], 0.8),
				stats.Normal(rng, cent[1], 0.8),
			})
			labels = append(labels, c)
		}
	}
	mc, err := Train(stats.NewRand(4), rows, labels, 3, Config{Epochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if acc := mc.Accuracy(rows, labels); acc < 0.97 {
		t.Errorf("accuracy = %v on separable blobs, want ≥0.97", acc)
	}
}

func TestAccuracyEmptyIsNaN(t *testing.T) {
	mc := &Multiclass{Models: []*Model{{W: []float64{1}}, {W: []float64{-1}}}, Classes: 2}
	if !math.IsNaN(mc.Accuracy(nil, nil)) {
		t.Error("Accuracy(empty) should be NaN")
	}
}

func TestConfusionMatrixAndPPV(t *testing.T) {
	// Deterministic fake models: class = sign of x[0].
	mc := &Multiclass{
		Models: []*Model{
			{W: []float64{-1}, B: 0}, // class 0 wins when x<0
			{W: []float64{1}, B: 0},  // class 1 wins when x>0
		},
		Classes: 2,
	}
	rows := [][]float64{{-1}, {-2}, {1}, {2}, {-3}}
	labels := []int{0, 0, 1, 0, 1} // two deliberate errors
	cm := mc.NewConfusion(rows, labels)
	if cm.Counts[0][0] != 2 || cm.Counts[0][1] != 1 || cm.Counts[1][1] != 1 || cm.Counts[1][0] != 1 {
		t.Fatalf("confusion = %v", cm.Counts)
	}
	ppv := cm.PPV()
	if math.Abs(ppv[0]-2.0/3) > 1e-12 {
		t.Errorf("PPV[0] = %v, want 2/3", ppv[0])
	}
	if math.Abs(ppv[1]-0.5) > 1e-12 {
		t.Errorf("PPV[1] = %v, want 1/2", ppv[1])
	}
	fdr := cm.FDR()
	if math.Abs(fdr[0]-1.0/3) > 1e-12 || math.Abs(fdr[1]-0.5) > 1e-12 {
		t.Errorf("FDR = %v", fdr)
	}
	if acc := cm.Accuracy(); math.Abs(acc-0.6) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.6", acc)
	}
}

func TestConfusionNeverPredictedClassNaN(t *testing.T) {
	mc := &Multiclass{
		Models: []*Model{
			{W: []float64{1}, B: 100}, // always wins
			{W: []float64{1}, B: 0},
		},
		Classes: 2,
	}
	cm := mc.NewConfusion([][]float64{{1}, {2}}, []int{0, 1})
	ppv := cm.PPV()
	if !math.IsNaN(ppv[1]) {
		t.Errorf("PPV of never-predicted class = %v, want NaN", ppv[1])
	}
}

func TestConfusionEmptyAccuracyNaN(t *testing.T) {
	cm := &Confusion{Classes: 2, Counts: [][]int{{0, 0}, {0, 0}}}
	if !math.IsNaN(cm.Accuracy()) {
		t.Error("empty confusion Accuracy should be NaN")
	}
}

func TestKernelOnControlDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel training on Control is slow for -short")
	}
	d := dataset.Control(stats.NewRand(5))
	std, err := stats.FitStandardizer(d.X)
	if err != nil {
		t.Fatal(err)
	}
	rows := std.Transform(d.X)
	mc, err := TrainKernel(stats.NewRand(6), rows, d.Y, d.Clusters, KernelConfig{Epochs: 8})
	if err != nil {
		t.Fatal(err)
	}
	acc := mc.Accuracy(rows, d.Y)
	// The paper's ground truth achieves 96.8% with MATLAB's kernel SVM;
	// the RBF Pegasos machine should be in the same band.
	if acc < 0.90 {
		t.Errorf("Control kernel accuracy = %v, want ≥0.90", acc)
	}
}

func TestKernelValidation(t *testing.T) {
	rows := [][]float64{{1}, {2}}
	if _, err := TrainKernel(stats.NewRand(1), nil, nil, 2, KernelConfig{}); err == nil {
		t.Error("empty rows should error")
	}
	if _, err := TrainKernel(stats.NewRand(1), rows, []int{0, 1}, 1, KernelConfig{}); err == nil {
		t.Error("classes<2 should error")
	}
	if _, err := TrainKernel(stats.NewRand(1), rows, []int{0}, 2, KernelConfig{}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := TrainKernel(stats.NewRand(1), rows, []int{0, 7}, 2, KernelConfig{}); err == nil {
		t.Error("out-of-range label should error")
	}
}

func TestKernelSeparatesXOR(t *testing.T) {
	// XOR is the canonical not-linearly-separable problem: a kernel machine
	// must solve it while the linear SVM cannot.
	rng := stats.NewRand(7)
	var rows [][]float64
	var labels []int
	for i := 0; i < 200; i++ {
		qx, qy := rng.Intn(2), rng.Intn(2)
		x := []float64{
			stats.Normal(rng, float64(qx)*4-2, 0.4),
			stats.Normal(rng, float64(qy)*4-2, 0.4),
		}
		rows = append(rows, x)
		if qx == qy {
			labels = append(labels, 0)
		} else {
			labels = append(labels, 1)
		}
	}
	mc, err := TrainKernel(stats.NewRand(8), rows, labels, 2, KernelConfig{Gamma: 0.5, Epochs: 15})
	if err != nil {
		t.Fatal(err)
	}
	if acc := mc.Accuracy(rows, labels); acc < 0.95 {
		t.Errorf("kernel XOR accuracy = %v, want ≥0.95", acc)
	}
	lin, err := Train(stats.NewRand(9), rows, labels, 2, Config{Epochs: 15})
	if err != nil {
		t.Fatal(err)
	}
	if acc := lin.Accuracy(rows, labels); acc > 0.75 {
		t.Errorf("linear SVM on XOR = %v; suspiciously good, check the generator", acc)
	}
}

func TestKernelConfusion(t *testing.T) {
	rows, labels := separable2D(10, 100)
	lab01 := make([]int, len(labels))
	for i, y := range labels {
		if y == 1 {
			lab01[i] = 1
		}
	}
	mc, err := TrainKernel(stats.NewRand(11), rows, lab01, 2, KernelConfig{Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	cm := mc.NewConfusion(rows, lab01)
	if acc := cm.Accuracy(); acc < 0.95 {
		t.Errorf("kernel confusion accuracy = %v", acc)
	}
	if !math.IsNaN(mc.Accuracy(nil, nil)) {
		t.Error("kernel Accuracy(empty) should be NaN")
	}
}

func TestDefaultGammaDegenerate(t *testing.T) {
	// Constant features: variance 0 must not produce Inf gamma.
	g := defaultGamma([][]float64{{1, 1}, {1, 1}})
	if math.IsInf(g, 0) || math.IsNaN(g) || g <= 0 {
		t.Errorf("defaultGamma on constant data = %v", g)
	}
	if g := defaultGamma(nil); g != 1 {
		t.Errorf("defaultGamma(nil) = %v, want 1", g)
	}
}
