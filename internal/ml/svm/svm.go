// Package svm implements a linear support vector machine trained with the
// Pegasos primal sub-gradient solver (Shalev-Shwartz et al., 2007) and a
// one-vs-rest reduction for multiclass problems. It is the classification
// consumer of the paper's Fig 6(a)/Fig 7 experiments, which report accuracy
// and per-class PPV/FDR on the labeled Control dataset.
package svm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// Model is a trained binary linear SVM: f(x) = w·x + b.
type Model struct {
	W []float64
	B float64
}

// Decision returns the signed margin for x.
func (m *Model) Decision(x []float64) float64 {
	return stats.Dot(m.W, x) + m.B
}

// Predict returns the binary label in {−1, +1}.
func (m *Model) Predict(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// Config controls training.
type Config struct {
	Lambda float64 // regularization, default 1e-4
	Epochs int     // passes over the data, default 20
}

func (c *Config) setDefaults() {
	if c.Lambda <= 0 {
		c.Lambda = 1e-4
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
}

// TrainBinary fits a binary SVM on rows with labels in {−1, +1}.
func TrainBinary(rng *rand.Rand, rows [][]float64, labels []int, cfg Config) (*Model, error) {
	cfg.setDefaults()
	if len(rows) == 0 {
		return nil, fmt.Errorf("svm: no training rows")
	}
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("svm: %d rows but %d labels", len(rows), len(labels))
	}
	for i, y := range labels {
		if y != -1 && y != 1 {
			return nil, fmt.Errorf("svm: label[%d] = %d, want ±1", i, y)
		}
	}
	dim := len(rows[0])
	w := make([]float64, dim)
	var b float64
	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(rows))
		for _, i := range perm {
			t++
			eta := 1 / (cfg.Lambda * float64(t))
			x, y := rows[i], float64(labels[i])
			margin := y * (stats.Dot(w, x) + b)
			// Sub-gradient step: shrink w, and on a margin violation also
			// step toward the violating example.
			for j := range w {
				w[j] *= 1 - eta*cfg.Lambda
			}
			if margin < 1 {
				for j := range w {
					w[j] += eta * y * x[j]
				}
				b += eta * y
			}
			// Pegasos projection onto the ‖w‖ ≤ 1/√λ ball.
			if n := stats.Norm(w); n > 0 {
				r := 1 / (math.Sqrt(cfg.Lambda) * n)
				if r < 1 {
					stats.Scale(w, r)
				}
			}
		}
	}
	return &Model{W: w, B: b}, nil
}

// Multiclass is a one-vs-rest ensemble over classes 0..K−1.
type Multiclass struct {
	Models  []*Model
	Classes int
}

// Train fits a one-vs-rest multiclass SVM. Labels must be in [0, classes).
func Train(rng *rand.Rand, rows [][]float64, labels []int, classes int, cfg Config) (*Multiclass, error) {
	if classes < 2 {
		return nil, fmt.Errorf("svm: %d classes", classes)
	}
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("svm: %d rows but %d labels", len(rows), len(labels))
	}
	for i, y := range labels {
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("svm: label[%d] = %d outside [0,%d)", i, y, classes)
		}
	}
	mc := &Multiclass{Models: make([]*Model, classes), Classes: classes}
	bin := make([]int, len(labels))
	for c := 0; c < classes; c++ {
		for i, y := range labels {
			if y == c {
				bin[i] = 1
			} else {
				bin[i] = -1
			}
		}
		m, err := TrainBinary(rng, rows, bin, cfg)
		if err != nil {
			return nil, fmt.Errorf("svm: class %d: %w", c, err)
		}
		mc.Models[c] = m
	}
	return mc, nil
}

// Predict returns the class with the largest one-vs-rest margin.
func (mc *Multiclass) Predict(x []float64) int {
	best, bestV := 0, math.Inf(-1)
	for c, m := range mc.Models {
		if v := m.Decision(x); v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// Accuracy returns the fraction of rows whose prediction matches labels.
func (mc *Multiclass) Accuracy(rows [][]float64, labels []int) float64 {
	if len(rows) == 0 {
		return math.NaN()
	}
	hit := 0
	for i, x := range rows {
		if mc.Predict(x) == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(rows))
}

// Confusion is a square confusion matrix: Counts[actual][predicted].
type Confusion struct {
	Counts  [][]int
	Classes int
}

// NewConfusion evaluates the model on rows/labels.
func (mc *Multiclass) NewConfusion(rows [][]float64, labels []int) *Confusion {
	cm := &Confusion{Classes: mc.Classes, Counts: make([][]int, mc.Classes)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, mc.Classes)
	}
	for i, x := range rows {
		cm.Counts[labels[i]][mc.Predict(x)]++
	}
	return cm
}

// PPV returns the positive predictive value (precision) per predicted class:
// TP / (TP + FP). Classes never predicted yield NaN. Fig 6(a) and Fig 7
// report PPV and FDR rows under each confusion matrix.
func (cm *Confusion) PPV() []float64 {
	out := make([]float64, cm.Classes)
	for p := 0; p < cm.Classes; p++ {
		var tp, col int
		for a := 0; a < cm.Classes; a++ {
			col += cm.Counts[a][p]
			if a == p {
				tp = cm.Counts[a][p]
			}
		}
		if col == 0 {
			out[p] = math.NaN()
		} else {
			out[p] = float64(tp) / float64(col)
		}
	}
	return out
}

// FDR returns the false discovery rate per predicted class, 1 − PPV.
func (cm *Confusion) FDR() []float64 {
	ppv := cm.PPV()
	out := make([]float64, len(ppv))
	for i, v := range ppv {
		out[i] = 1 - v
	}
	return out
}

// Accuracy returns overall accuracy from the confusion counts.
func (cm *Confusion) Accuracy() float64 {
	var hit, total int
	for a := range cm.Counts {
		for p, n := range cm.Counts[a] {
			total += n
			if a == p {
				hit += n
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(hit) / float64(total)
}
