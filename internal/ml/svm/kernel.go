package svm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// KernelModel is a binary RBF-kernel SVM trained with kernelized Pegasos:
// f(x) = (1/(λT)) Σ_i α_i y_i K(x_i, x). MATLAB's fitcsvm — the paper's SVM
// — defaults to a kernel machine; the linear Model above cannot separate
// control-chart classes that share a mean, so the Fig 6(a)/Fig 7 pipeline
// uses this type.
type KernelModel struct {
	SupportX [][]float64
	Coef     []float64 // α_i · y_i / (λT), folded into one coefficient
	Gamma    float64
}

// KernelConfig controls kernel training.
type KernelConfig struct {
	Gamma  float64 // RBF width; default 1/(dim · mean feature variance)
	Lambda float64 // regularization, default 1e-5
	Epochs int     // default 10
}

func (c *KernelConfig) setDefaults(rows [][]float64) {
	if c.Lambda <= 0 {
		c.Lambda = 1e-5
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.Gamma <= 0 {
		c.Gamma = defaultGamma(rows)
	}
}

// defaultGamma is the scikit-learn-style heuristic γ = 1/(d·Var(X)).
func defaultGamma(rows [][]float64) float64 {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return 1
	}
	dim := len(rows[0])
	var sum, sq float64
	var n int
	for _, r := range rows {
		for _, v := range r {
			sum += v
			sq += v * v
			n++
		}
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if variance <= 0 {
		variance = 1
	}
	return 1 / (float64(dim) * variance)
}

// rbf evaluates exp(−γ‖a−b‖²).
func rbf(a, b []float64, gamma float64) float64 {
	return math.Exp(-gamma * stats.SquaredEuclidean(a, b))
}

// Decision returns the kernel decision value for x.
func (m *KernelModel) Decision(x []float64) float64 {
	var s float64
	for i, sv := range m.SupportX {
		if m.Coef[i] == 0 {
			continue
		}
		s += m.Coef[i] * rbf(sv, x, m.Gamma)
	}
	return s
}

// Predict returns the binary label in {−1, +1}.
func (m *KernelModel) Predict(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// gram precomputes the RBF Gram matrix, shared by all one-vs-rest
// classifiers of a multiclass problem.
func gram(rows [][]float64, gamma float64) [][]float64 {
	n := len(rows)
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		g[i][i] = 1
		for j := i + 1; j < n; j++ {
			v := rbf(rows[i], rows[j], gamma)
			g[i][j] = v
			g[j][i] = v
		}
	}
	return g
}

// trainKernelBinary runs kernelized Pegasos against a precomputed Gram
// matrix. labels must be ±1.
func trainKernelBinary(rng *rand.Rand, g [][]float64, labels []int, cfg KernelConfig) []float64 {
	n := len(labels)
	alpha := make([]float64, n)
	T := cfg.Epochs * n
	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(n)
		for _, i := range perm {
			t++
			var s float64
			for j := 0; j < n; j++ {
				if alpha[j] != 0 {
					s += alpha[j] * float64(labels[j]) * g[j][i]
				}
			}
			s /= cfg.Lambda * float64(t)
			if float64(labels[i])*s < 1 {
				alpha[i]++
			}
		}
	}
	// Fold 1/(λT) and y_i into the stored coefficient.
	coef := make([]float64, n)
	for i := range coef {
		coef[i] = alpha[i] * float64(labels[i]) / (cfg.Lambda * float64(T))
	}
	return coef
}

// KernelMulticlass is a one-vs-rest ensemble of RBF SVMs.
type KernelMulticlass struct {
	Models  []*KernelModel
	Classes int
}

// TrainKernel fits a one-vs-rest RBF SVM. Labels must be in [0, classes).
// The Gram matrix is computed once and shared across the per-class
// sub-problems.
func TrainKernel(rng *rand.Rand, rows [][]float64, labels []int, classes int, cfg KernelConfig) (*KernelMulticlass, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("svm: no training rows")
	}
	if classes < 2 {
		return nil, fmt.Errorf("svm: %d classes", classes)
	}
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("svm: %d rows but %d labels", len(rows), len(labels))
	}
	for i, y := range labels {
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("svm: label[%d] = %d outside [0,%d)", i, y, classes)
		}
	}
	cfg.setDefaults(rows)
	g := gram(rows, cfg.Gamma)
	mc := &KernelMulticlass{Models: make([]*KernelModel, classes), Classes: classes}
	bin := make([]int, len(labels))
	for c := 0; c < classes; c++ {
		for i, y := range labels {
			if y == c {
				bin[i] = 1
			} else {
				bin[i] = -1
			}
		}
		coef := trainKernelBinary(rng, g, bin, cfg)
		// Keep only support vectors (non-zero coefficients) to shrink the
		// model and speed up prediction.
		var svx [][]float64
		var svc []float64
		for i, cf := range coef {
			if cf != 0 {
				svx = append(svx, rows[i])
				svc = append(svc, cf)
			}
		}
		mc.Models[c] = &KernelModel{SupportX: svx, Coef: svc, Gamma: cfg.Gamma}
	}
	return mc, nil
}

// Predict returns the class with the largest one-vs-rest decision value.
func (mc *KernelMulticlass) Predict(x []float64) int {
	best, bestV := 0, math.Inf(-1)
	for c, m := range mc.Models {
		if v := m.Decision(x); v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// Accuracy returns the fraction of rows classified correctly.
func (mc *KernelMulticlass) Accuracy(rows [][]float64, labels []int) float64 {
	if len(rows) == 0 {
		return math.NaN()
	}
	hit := 0
	for i, x := range rows {
		if mc.Predict(x) == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(rows))
}

// NewConfusion evaluates the kernel ensemble on rows/labels.
func (mc *KernelMulticlass) NewConfusion(rows [][]float64, labels []int) *Confusion {
	cm := &Confusion{Classes: mc.Classes, Counts: make([][]int, mc.Classes)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, mc.Classes)
	}
	for i, x := range rows {
		cm.Counts[labels[i]][mc.Predict(x)]++
	}
	return cm
}
