// Package kmeans implements Lloyd's algorithm with k-means++ seeding, the
// clustering consumer of the paper's Fig 4/Fig 5 experiments. It reports the
// two quality measures those figures plot: SSE (within-cluster sum of
// squared errors) and the centroid distance to a reference clustering.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// Result holds a fitted clustering.
type Result struct {
	Centroids  [][]float64 // k × dim
	Assignment []int       // per-row centroid index
	SSE        float64     // Σ ‖x_i − c_{a(i)}‖²
	Iterations int
}

// Config controls the fit.
type Config struct {
	K        int
	MaxIter  int     // default 100
	Tol      float64 // centroid-movement convergence threshold, default 1e-6
	Restarts int     // independent restarts keeping the best SSE, default 1
}

func (c *Config) setDefaults() {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.Restarts <= 0 {
		c.Restarts = 1
	}
}

// Fit clusters rows into cfg.K clusters.
func Fit(rng *rand.Rand, rows [][]float64, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: k = %d", cfg.K)
	}
	if len(rows) < cfg.K {
		return nil, fmt.Errorf("kmeans: %d rows for k = %d", len(rows), cfg.K)
	}
	var best *Result
	for r := 0; r < cfg.Restarts; r++ {
		res, err := fitOnce(rng, rows, cfg)
		if err != nil {
			return nil, err
		}
		if best == nil || res.SSE < best.SSE {
			best = res
		}
	}
	return best, nil
}

func fitOnce(rng *rand.Rand, rows [][]float64, cfg Config) (*Result, error) {
	dim := len(rows[0])
	cents := seedPlusPlus(rng, rows, cfg.K)
	assign := make([]int, len(rows))
	counts := make([]int, cfg.K)
	sums := make([][]float64, cfg.K)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}

	var iter int
	for iter = 0; iter < cfg.MaxIter; iter++ {
		// Assignment step.
		for i, row := range rows {
			assign[i] = nearest(row, cents)
		}
		// Update step.
		for c := range sums {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i, row := range rows {
			c := assign[i]
			counts[c]++
			stats.AddInPlace(sums[c], row)
		}
		moved := 0.0
		for c := range cents {
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// centroid, the standard Lloyd repair.
				far := farthestRow(rows, cents, assign)
				copy(cents[c], rows[far])
				moved = math.Inf(1)
				continue
			}
			for j := range cents[c] {
				nv := sums[c][j] / float64(counts[c])
				moved += math.Abs(nv - cents[c][j])
				cents[c][j] = nv
			}
		}
		if moved <= cfg.Tol {
			iter++
			break
		}
	}

	var sse float64
	for i, row := range rows {
		assign[i] = nearest(row, cents)
		sse += stats.SquaredEuclidean(row, cents[assign[i]])
	}
	return &Result{Centroids: cents, Assignment: assign, SSE: sse, Iterations: iter}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(rng *rand.Rand, rows [][]float64, k int) [][]float64 {
	cents := make([][]float64, 0, k)
	first := rows[rng.Intn(len(rows))]
	cents = append(cents, append([]float64(nil), first...))
	d2 := make([]float64, len(rows))
	for len(cents) < k {
		var total float64
		last := cents[len(cents)-1]
		for i, row := range rows {
			d := stats.SquaredEuclidean(row, last)
			if len(cents) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		var idx int
		if total == 0 {
			idx = rng.Intn(len(rows)) // all points coincide with a centroid
		} else {
			u := rng.Float64() * total
			var cum float64
			for i, d := range d2 {
				cum += d
				if u <= cum {
					idx = i
					break
				}
			}
		}
		cents = append(cents, append([]float64(nil), rows[idx]...))
	}
	return cents
}

func nearest(row []float64, cents [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range cents {
		if d := stats.SquaredEuclidean(row, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func farthestRow(rows [][]float64, cents [][]float64, assign []int) int {
	best, bestD := 0, -1.0
	for i, row := range rows {
		if d := stats.SquaredEuclidean(row, cents[assign[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// CentroidDistance returns the summed Euclidean distance between two
// centroid sets under the optimal (Hungarian) minimal matching. This is the
// "Distance" series of Fig 4/Fig 5: the discrepancy between the poisoned
// clustering's centroids and the ground truth, invariant to cluster
// relabeling.
func CentroidDistance(a, b [][]float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("kmeans: centroid count mismatch")
	}
	k := len(a)
	if k == 0 {
		return 0, nil
	}
	cost := make([][]float64, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		for j := range cost[i] {
			cost[i][j] = stats.Euclidean(a[i], b[j])
		}
	}
	assign := hungarian(cost)
	var total float64
	for i, j := range assign {
		total += cost[i][j]
	}
	return total, nil
}
