package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func blobs(seed int64) [][]float64 {
	rng := stats.NewRand(seed)
	rows := make([][]float64, 0, 300)
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	for _, c := range centers {
		for i := 0; i < 100; i++ {
			rows = append(rows, []float64{
				stats.Normal(rng, c[0], 0.5),
				stats.Normal(rng, c[1], 0.5),
			})
		}
	}
	return rows
}

func TestFitRecoversBlobs(t *testing.T) {
	rows := blobs(1)
	res, err := Fit(stats.NewRand(2), rows, Config{K: 3, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	d, err := CentroidDistance(res.Centroids, want)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1.0 {
		t.Errorf("centroid distance to truth = %v, want <1", d)
	}
	if res.SSE <= 0 {
		t.Errorf("SSE = %v, want >0 on noisy blobs", res.SSE)
	}
	if res.Iterations <= 0 {
		t.Error("Iterations not recorded")
	}
}

func TestFitValidation(t *testing.T) {
	rows := [][]float64{{1}, {2}}
	if _, err := Fit(stats.NewRand(1), rows, Config{K: 0}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Fit(stats.NewRand(1), rows, Config{K: 5}); err == nil {
		t.Error("k>n should error")
	}
}

func TestFitK1MatchesMean(t *testing.T) {
	rows := [][]float64{{1, 1}, {3, 5}, {5, 3}}
	res, err := Fit(stats.NewRand(1), rows, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := stats.MeanVector(rows)
	if stats.Euclidean(res.Centroids[0], mean) > 1e-9 {
		t.Errorf("k=1 centroid %v, want mean %v", res.Centroids[0], mean)
	}
}

func TestFitIdenticalPoints(t *testing.T) {
	rows := [][]float64{{2, 2}, {2, 2}, {2, 2}, {2, 2}}
	res, err := Fit(stats.NewRand(1), rows, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE != 0 {
		t.Errorf("SSE on identical points = %v, want 0", res.SSE)
	}
}

func TestAssignmentConsistency(t *testing.T) {
	rows := blobs(3)
	res, err := Fit(stats.NewRand(4), rows, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every row must be assigned to its genuinely nearest centroid.
	for i, row := range rows {
		got := res.Assignment[i]
		for c := range res.Centroids {
			if stats.SquaredEuclidean(row, res.Centroids[c]) <
				stats.SquaredEuclidean(row, res.Centroids[got])-1e-9 {
				t.Fatalf("row %d assigned to %d but %d is nearer", i, got, c)
			}
		}
	}
}

func TestSSEDecomposition(t *testing.T) {
	rows := blobs(5)
	res, err := Fit(stats.NewRand(6), rows, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sse float64
	for i, row := range rows {
		sse += stats.SquaredEuclidean(row, res.Centroids[res.Assignment[i]])
	}
	if math.Abs(sse-res.SSE) > 1e-6 {
		t.Errorf("reported SSE %v != recomputed %v", res.SSE, sse)
	}
}

func TestRestartsNeverWorse(t *testing.T) {
	rows := blobs(7)
	one, err := Fit(stats.NewRand(8), rows, Config{K: 3, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Fit(stats.NewRand(8), rows, Config{K: 3, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if many.SSE > one.SSE+1e-9 {
		t.Errorf("5 restarts SSE %v worse than 1 restart %v", many.SSE, one.SSE)
	}
}

func TestCentroidDistance(t *testing.T) {
	a := [][]float64{{0, 0}, {1, 1}}
	b := [][]float64{{1, 1}, {0, 0}} // permuted
	d, err := CentroidDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("permutation-invariant distance = %v, want 0", d)
	}
	if _, err := CentroidDistance(a, [][]float64{{0, 0}}); err == nil {
		t.Error("count mismatch should error")
	}
	c := [][]float64{{0, 3}, {1, 1}}
	d, _ = CentroidDistance(a, c)
	if d != 3 {
		t.Errorf("distance = %v, want 3", d)
	}
}

func TestOnControlDataset(t *testing.T) {
	d := dataset.Control(stats.NewRand(9))
	res, err := Fit(stats.NewRand(10), d.X, Config{K: d.Clusters, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 6 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	// Poisoning the dataset must increase SSE relative to clean data when
	// measured against the clean centroids — sanity for the Fig 4 pipeline.
	poisoned := d.Clone()
	rng := stats.NewRand(11)
	for i := 0; i < 120; i++ {
		row := make([]float64, d.Dim())
		for j := range row {
			row[j] = 200 + rng.Float64()*50 // far outside control-chart range
		}
		poisoned.X = append(poisoned.X, row)
	}
	resP, err := Fit(stats.NewRand(12), poisoned.X, Config{K: d.Clusters, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := CentroidDistance(res.Centroids, resP.Centroids)
	if err != nil {
		t.Fatal(err)
	}
	if dist < 1 {
		t.Errorf("poison moved centroids by only %v; expected visible shift", dist)
	}
}

// Property: SSE is never negative, and adding a duplicate of an existing row
// can only change SSE by a bounded non-negative amount for fixed centroids.
func TestSSENonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rows := blobs(seed % 1000)
		res, err := Fit(stats.NewRand(seed), rows, Config{K: 3})
		if err != nil {
			return false
		}
		return res.SSE >= 0
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
