package arrival

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ldp"
	"repro/internal/stats"
)

// Categorical draws one shard's slice of a categorical (frequency-oracle)
// round: honest categories sampled from the clean pool and perturbed
// through the k-ary GRR channel, then input-manipulation poison — forge the
// category at a commanded percentile of the clean category distribution and
// follow the protocol (GRRValue rounds the forged percentile value to its
// nearest legal category, exactly as ldp.NewInputManipulator would). The
// draw order per arrival is part of the reproducibility contract and
// matches LDP's:
//
//	honest i:  one Intn (pool index), then the channel's Perturb draws
//	poison i:  Inject.Sample, then the channel's Perturb draws on the
//	           forged category
//
// Reports are category indices embedded in float64, so the rest of the
// pipeline — summaries, trim thresholds, classification — treats a
// categorical round exactly like a numeric one over the ordinal scale.
type Categorical struct {
	Pool   []int // honest category pool; index order matters (Intn addressing)
	Mech   *ldp.GRRValue
	sorted []float64 // Pool as sorted floats (forged-percentile resolution)
}

// NewCategorical builds the generator, validating every pool entry against
// the channel's category domain and sorting a private percentile scale.
func NewCategorical(pool []int, mech *ldp.GRRValue) (*Categorical, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("arrival: categorical generator needs a category pool")
	}
	if mech == nil {
		return nil, fmt.Errorf("arrival: categorical generator needs a GRR channel")
	}
	sorted := make([]float64, len(pool))
	for i, c := range pool {
		if c < 0 || c >= mech.K() {
			return nil, fmt.Errorf("arrival: pool category %d outside [0, %d)", c, mech.K())
		}
		sorted[i] = float64(c)
	}
	sort.Float64s(sorted)
	return &Categorical{Pool: pool, Mech: mech, sorted: sorted}, nil
}

// NewCategoricalFromWire rebuilds the generator from its configure payload:
// the pool shipped as floats (validated to be integral categories) plus the
// GRR channel's (ε, k). This is the worker-side guard — a non-categorical
// pool behind a MechGRR configure is a protocol error, never a silently
// rounded draw.
func NewCategoricalFromWire(pool []float64, eps float64, k int) (*Categorical, error) {
	mech, err := ldp.NewGRRValue(eps, k)
	if err != nil {
		return nil, err
	}
	cats := make([]int, len(pool))
	for i, v := range pool {
		c := int(v)
		if float64(c) != v {
			return nil, fmt.Errorf("arrival: pool entry %v is not a category index", v)
		}
		cats[i] = c
	}
	return NewCategorical(cats, mech)
}

// Draw generates the shard's reports for one round. Poison occupies the
// tail: poisonFrom = s.HonestN. inputSum is the Σ of honest true categories
// behind the reports (the shard's share of the game's TrueMean); pctSum the
// Σ of drawn injection percentiles.
func (g *Categorical) Draw(rng *rand.Rand, s Spec) (reports []float64, inputSum, pctSum float64, err error) {
	if g == nil || g.Mech == nil || len(g.Pool) == 0 {
		return nil, 0, 0, fmt.Errorf("arrival: categorical generator not configured")
	}
	if err := s.validate(); err != nil {
		return nil, 0, 0, err
	}
	reports = make([]float64, 0, s.HonestN+s.PoisonN)
	for i := 0; i < s.HonestN; i++ {
		c := g.Pool[rng.Intn(len(g.Pool))]
		inputSum += float64(c)
		reports = append(reports, g.Mech.Perturb(rng, float64(c)))
	}
	for i := 0; i < s.PoisonN; i++ {
		pct := s.Inject.Sample(rng)
		pctSum += pct
		forged := stats.QuantileSorted(g.sorted, pct)
		reports = append(reports, g.Mech.Perturb(rng, forged))
	}
	return reports, inputSum, pctSum, nil
}
