package arrival

import (
	"fmt"
	"sort"

	"math/rand"

	"repro/internal/ldp"
	"repro/internal/stats"
)

// Mech is an LDP mechanism code of the wire format — the mechanisms whose
// construction is a pure function of (kind, ε, arity) and can therefore be
// re-instantiated identically on a worker. Piecewise and Duchi need only
// (kind, ε); the categorical GRR additionally carries its category count k
// (wire.Directive.MechK). Mechanisms with richer state (the EMF baseline's
// binned channel) are not wire-codable; shard-local LDP games reject them
// at validation. The named type makes mechanism dispatches visible to the
// opswitch exhaustiveness analyzer: adding a code without handling it in
// every switch is a lint failure, not a runtime surprise.
type Mech byte

// The wire-codable mechanism codes. MechNone marks a non-LDP game.
const (
	MechNone      Mech = 0
	MechPiecewise Mech = 1
	MechDuchi     Mech = 2
	MechGRR       Mech = 3
)

// MechToWire returns the wire code of a mechanism — (kind, ε, arity), with
// arity 0 for the numeric mechanisms — or an error when the mechanism
// cannot be reconstructed from a code.
func MechToWire(m ldp.Mechanism) (kind Mech, eps float64, k int, err error) {
	switch g := m.(type) {
	case *ldp.Piecewise:
		return MechPiecewise, m.Epsilon(), 0, nil
	case *ldp.Duchi:
		return MechDuchi, m.Epsilon(), 0, nil
	case *ldp.GRRValue:
		return MechGRR, g.Epsilon(), g.K(), nil
	}
	return MechNone, 0, 0, fmt.Errorf("arrival: mechanism %T is not wire-codable", m)
}

// MechFromWire reconstructs a mechanism from its wire code.
func MechFromWire(kind Mech, eps float64, k int) (ldp.Mechanism, error) {
	switch kind {
	case MechPiecewise:
		return ldp.NewPiecewise(eps)
	case MechDuchi:
		return ldp.NewDuchi(eps)
	case MechGRR:
		return ldp.NewGRRValue(eps, k)
	case MechNone:
		return nil, fmt.Errorf("arrival: mechanism code MechNone marks a non-LDP game; nothing to reconstruct")
	default:
		return nil, fmt.Errorf("arrival: unknown mechanism code %d", kind)
	}
}

// LDP draws one shard's slice of a privacy-preserving round: honest inputs
// sampled from the clean pool and perturbed through the mechanism, then
// input-manipulation poison (forge an input at a commanded percentile of
// the clean input distribution, follow the protocol). The draw order per
// arrival is part of the reproducibility contract:
//
//	honest i:  one Intn (pool index), then the mechanism's Perturb draws
//	poison i:  Inject.Sample, then the mechanism's Perturb draws on the
//	           forged input
type LDP struct {
	Pool   []float64 // clean input pool; index order matters (Intn addressing)
	Mech   ldp.Mechanism
	sorted []float64 // Pool sorted, for forged-input percentile resolution
}

// NewLDP builds the generator, sorting a private copy of the pool once.
func NewLDP(pool []float64, mech ldp.Mechanism) (*LDP, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("arrival: LDP generator needs an input pool")
	}
	if mech == nil {
		return nil, fmt.Errorf("arrival: LDP generator needs a mechanism")
	}
	sorted := append([]float64(nil), pool...)
	sort.Float64s(sorted)
	return &LDP{Pool: pool, Mech: mech, sorted: sorted}, nil
}

// Draw generates the shard's reports for one round. Poison occupies the
// tail: poisonFrom = s.HonestN. inputSum is the Σ of honest inputs behind
// the reports (the shard's share of the game's TrueMean); pctSum the Σ of
// drawn injection percentiles.
func (g *LDP) Draw(rng *rand.Rand, s Spec) (reports []float64, inputSum, pctSum float64, err error) {
	if g == nil || g.Mech == nil || len(g.Pool) == 0 {
		return nil, 0, 0, fmt.Errorf("arrival: LDP generator not configured")
	}
	if err := s.validate(); err != nil {
		return nil, 0, 0, err
	}
	reports = make([]float64, 0, s.HonestN+s.PoisonN)
	for i := 0; i < s.HonestN; i++ {
		x := g.Pool[rng.Intn(len(g.Pool))]
		inputSum += x
		reports = append(reports, g.Mech.Perturb(rng, x))
	}
	for i := 0; i < s.PoisonN; i++ {
		pct := s.Inject.Sample(rng)
		pctSum += pct
		forged := stats.QuantileSorted(g.sorted, pct)
		m, err := ldp.NewInputManipulator(g.Mech, forged)
		if err != nil {
			return nil, 0, 0, err
		}
		reports = append(reports, m.Report(rng))
	}
	return reports, inputSum, pctSum, nil
}
