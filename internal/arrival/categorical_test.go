package arrival

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/ldp"
	"repro/internal/stats"
)

func catPool(n, k int, seed int64) []int {
	rng := stats.NewRand(seed)
	pool := make([]int, n)
	for i := range pool {
		pool[i] = rng.Intn(k)
	}
	return pool
}

func TestCategoricalValidation(t *testing.T) {
	mech, err := ldp.NewGRRValue(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCategorical(nil, mech); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewCategorical([]int{0, 1}, nil); err == nil {
		t.Fatal("nil mechanism accepted")
	}
	if _, err := NewCategorical([]int{0, 4}, mech); err == nil {
		t.Fatal("out-of-domain category accepted")
	}
	if _, err := NewCategoricalFromWire([]float64{0, 1.5}, 2, 4); err == nil {
		t.Fatal("non-integral wire pool accepted")
	}
	if _, err := NewCategoricalFromWire([]float64{0, 3}, 2, 4); err != nil {
		t.Fatal(err)
	}
}

// The categorical generator's draw contract matches the numeric LDP
// generator over the float-embedded pool: same derived stream, identical
// reports and sums. This is what lets a GRR game run through either path —
// a worker configured with MechGRR reproduces a reference that drew through
// arrival.LDP, draw for draw.
func TestCategoricalDrawMatchesLDPEmbedding(t *testing.T) {
	const k = 6
	mech, err := ldp.NewGRRValue(1.5, k)
	if err != nil {
		t.Fatal(err)
	}
	pool := catPool(500, k, 21)
	cat, err := NewCategorical(pool, mech)
	if err != nil {
		t.Fatal(err)
	}
	floatPool := make([]float64, len(pool))
	for i, c := range pool {
		floatPool[i] = float64(c)
	}
	num, err := NewLDP(floatPool, mech)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		HonestN: 200, PoisonN: 40,
		Inject: attack.InjectionSpec{Kind: attack.SpecUniform, Lo: 0.9, Hi: 1},
	}
	a, aIn, aPct, err := cat.Draw(stats.NewRand(31), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, bIn, bPct, err := num.Draw(stats.NewRand(31), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || aIn != bIn || aPct != bPct {
		t.Fatalf("draws diverged: %d/%d reports, inputSum %v/%v, pctSum %v/%v",
			len(a), len(b), aIn, bIn, aPct, bPct)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != float64(int(a[i])) || a[i] < 0 || a[i] >= k {
			t.Fatalf("report %d = %v is not a category", i, a[i])
		}
	}
}

func TestCategoricalDeterministic(t *testing.T) {
	mech, err := ldp.NewGRRValue(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := NewCategorical(catPool(300, 8, 22), mech)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{HonestN: 100, PoisonN: 20, Inject: attack.PointSpec(0.99)}
	a, _, _, err := cat.Draw(stats.NewRand(5), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := cat.Draw(stats.NewRand(5), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical seeds diverged")
		}
	}
}
