package arrival

import (
	"fmt"
	"math"
	"math/rand"
)

// Rows draws one shard's slice of a row-game round: honest rows sampled
// uniformly with replacement from the dataset, then poison rows rescaled to
// commanded distance percentiles of the clean scale around the current
// robust center. The draw order per arrival is part of the reproducibility
// contract:
//
//	honest i:  one Intn (dataset index)
//	poison i:  Inject.Sample, one Float64 (jitter), one Intn (base row),
//	           and — when the dataset is labeled and PoisonLabel < 0 —
//	           one Intn (random class)
type Rows struct {
	X [][]float64
	Y []int // nil when unlabeled

	Clusters    int // class count for random poison labels
	PoisonLabel int // fixed poison label; −1: random existing class
}

// Labeled reports whether generated arrivals carry labels.
func (g *Rows) Labeled() bool { return g != nil && g.Y != nil }

func (g *Rows) validate() error {
	if g == nil || len(g.X) == 0 {
		return fmt.Errorf("arrival: row generator needs a dataset")
	}
	if g.Y != nil && len(g.Y) != len(g.X) {
		return fmt.Errorf("arrival: %d labels for %d rows", len(g.Y), len(g.X))
	}
	if g.Y != nil && g.PoisonLabel < 0 && g.Clusters <= 0 {
		return fmt.Errorf("arrival: random poison labels need a class count")
	}
	return nil
}

// Draw generates the shard's arrivals for one round. scaleQ resolves a
// percentile on the clean distance scale (the merged per-shard scale
// summary); center is the collector's current robust center. Poison
// occupies the tail: poisonFrom = s.HonestN. labels is nil for unlabeled
// datasets, else aligned with rows.
func (g *Rows) Draw(rng *rand.Rand, s Spec, center []float64, scaleQ func(float64) float64) (rows [][]float64, labels []int, pctSum float64, err error) {
	if err := g.validate(); err != nil {
		return nil, nil, 0, err
	}
	if err := s.validate(); err != nil {
		return nil, nil, 0, err
	}
	if len(center) == 0 {
		return nil, nil, 0, fmt.Errorf("arrival: row generation without a center")
	}
	rows = make([][]float64, 0, s.HonestN+s.PoisonN)
	if g.Labeled() {
		labels = make([]int, 0, s.HonestN+s.PoisonN)
	}
	for i := 0; i < s.HonestN; i++ {
		j := rng.Intn(len(g.X))
		rows = append(rows, g.X[j])
		if labels != nil {
			labels = append(labels, g.Y[j])
		}
	}
	for i := 0; i < s.PoisonN; i++ {
		pct := s.Inject.Sample(rng)
		pctSum += pct
		dist := scaleQ(pct) + (rng.Float64()-0.5)*s.Jitter
		if dist < 0 {
			dist = 0
		}
		base := g.X[rng.Intn(len(g.X))]
		rows = append(rows, PoisonRow(center, base, dist))
		if labels != nil {
			label := g.PoisonLabel
			if label < 0 {
				label = rng.Intn(g.Clusters)
			}
			labels = append(labels, label)
		}
	}
	return rows, labels, pctSum, nil
}

// PoisonRow rescales an honest base row about the center so that its
// distance from the center equals dist exactly — the evasive counterfeit
// record of §III-A: the game-relevant quantity (distance) is coordinated,
// everything else looks like data. Degenerate bases (at the center) fall
// back to a unit offset in the first coordinate.
func PoisonRow(center, base []float64, dist float64) []float64 {
	row := make([]float64, len(center))
	norm := 0.0
	for i := range row {
		row[i] = base[i] - center[i]
		norm += row[i] * row[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		row[0] = dist
		for i := range center {
			row[i] += center[i]
		}
		return row
	}
	for i := range row {
		row[i] = center[i] + row[i]*dist/norm
	}
	return row
}
