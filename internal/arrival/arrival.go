// Package arrival is the shard-local data plane of the collection games:
// deterministic arrival generators that draw one shard's slice of a round
// — honest, injected and poisoned — from an RNG stream derived off a
// master seed (stats.DeriveSeed). The same generator code runs inside the
// single-process sharded engines (internal/collect) and inside cluster
// workers (internal/cluster), which is what lets a loopback or TCP cluster
// reproduce a single-process reference run record for record while the
// coordinator ships only O(1) round directives (wire.GenSpec) instead of
// O(batch) value slices. See DESIGN.md §7 for the seed-derivation and
// draw-order contracts.
package arrival

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Spec is the decoded per-round generation recipe: how many arrivals this
// shard draws and from which injection distribution. It is the in-memory
// form of the wire.GenSpec scalars.
type Spec struct {
	HonestN int
	PoisonN int
	Inject  attack.InjectionSpec
	Jitter  float64 // tie-breaking jitter width on the percentile scale
}

func (s Spec) validate() error {
	if s.HonestN < 0 || s.PoisonN < 0 {
		return fmt.Errorf("arrival: negative counts %d/%d", s.HonestN, s.PoisonN)
	}
	if s.PoisonN > 0 {
		return s.Inject.Validate()
	}
	return nil
}

// SpecToWire packs a spec and its derived seed into the wire form.
func SpecToWire(seed int64, s Spec) *wire.GenSpec {
	return &wire.GenSpec{
		Seed:       seed,
		HonestN:    s.HonestN,
		PoisonN:    s.PoisonN,
		InjectKind: byte(s.Inject.Kind),
		InjectP:    s.Inject.P,
		InjectLo:   s.Inject.Lo,
		InjectHi:   s.Inject.Hi,
		Jitter:     s.Jitter,
	}
}

// SpecFromWire unpacks and validates a decoded wire.GenSpec — the worker-
// side guard: a malformed generator directive is a protocol error, never a
// silently skewed draw.
func SpecFromWire(g *wire.GenSpec) (Spec, error) {
	if g == nil {
		return Spec{}, fmt.Errorf("arrival: directive carries no generator spec")
	}
	s := Spec{
		HonestN: g.HonestN,
		PoisonN: g.PoisonN,
		Inject: attack.InjectionSpec{
			Kind: attack.SpecKind(g.InjectKind),
			P:    g.InjectP,
			Lo:   g.InjectLo,
			Hi:   g.InjectHi,
		},
		Jitter: g.Jitter,
	}
	if err := s.validate(); err != nil {
		return Spec{}, err
	}
	if !(g.Jitter >= 0) || math.IsInf(g.Jitter, 0) {
		return Spec{}, fmt.Errorf("arrival: jitter %v", g.Jitter)
	}
	return s, nil
}

// Scalar draws one shard's slice of a scalar round: honest values sampled
// uniformly with replacement from Pool, then poison values placed at
// injection percentiles of the sorted reference Ref (with tie-breaking
// jitter). The draw order per arrival is part of the reproducibility
// contract:
//
//	honest i:  one Intn (pool index)
//	poison i:  Inject.Sample, then one Float64 (jitter)
type Scalar struct {
	Pool []float64 // honest pool; index order matters (Intn addressing)
	Ref  []float64 // sorted clean reference (injection percentile scale)
}

func (g *Scalar) validate() error {
	if g == nil || len(g.Pool) == 0 || len(g.Ref) == 0 {
		return fmt.Errorf("arrival: scalar generator needs a pool and a reference")
	}
	return nil
}

// Draw generates the shard's arrivals for one round. Poison occupies the
// tail: poisonFrom = s.HonestN. pctSum is the Σ of drawn injection
// percentiles (the shard's share of the round's MeanInjectionPct).
func (g *Scalar) Draw(rng *rand.Rand, s Spec) (values []float64, pctSum float64, err error) {
	if err := g.validate(); err != nil {
		return nil, 0, err
	}
	if err := s.validate(); err != nil {
		return nil, 0, err
	}
	values = make([]float64, 0, s.HonestN+s.PoisonN)
	for i := 0; i < s.HonestN; i++ {
		values = append(values, g.Pool[rng.Intn(len(g.Pool))])
	}
	for i := 0; i < s.PoisonN; i++ {
		pct := s.Inject.Sample(rng)
		pctSum += pct
		values = append(values, stats.QuantileSorted(g.Ref, pct)+(rng.Float64()-0.5)*s.Jitter)
	}
	return values, pctSum, nil
}
