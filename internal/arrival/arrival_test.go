package arrival

import (
	"math"
	"sort"
	"testing"

	"repro/internal/attack"
	"repro/internal/ldp"
	"repro/internal/stats"
)

func scalarSpec(honest, poison int) Spec {
	return Spec{
		HonestN: honest, PoisonN: poison,
		Inject: attack.PointSpec(0.99),
		Jitter: 1e-6,
	}
}

func TestSpecWireRoundTrip(t *testing.T) {
	s := Spec{
		HonestN: 100, PoisonN: 20,
		Inject: attack.InjectionSpec{Kind: attack.SpecMixture, P: 0.7, Lo: 0.9, Hi: 0.99},
		Jitter: 0.5,
	}
	got, err := SpecFromWire(SpecToWire(42, s))
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
	if SpecToWire(42, s).Seed != 42 {
		t.Fatal("seed not carried")
	}
	if _, err := SpecFromWire(nil); err == nil {
		t.Fatal("nil gen spec accepted")
	}
	bad := SpecToWire(1, s)
	bad.InjectKind = 99
	if _, err := SpecFromWire(bad); err == nil {
		t.Fatal("bad inject kind accepted")
	}
	neg := SpecToWire(1, s)
	neg.HonestN = -1
	if _, err := SpecFromWire(neg); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestScalarDrawDeterministicAndShaped(t *testing.T) {
	ref := stats.NormalSlice(stats.NewRand(1), 2000, 0, 1)
	sorted := append([]float64(nil), ref...)
	sort.Float64s(sorted)
	g := &Scalar{Pool: ref, Ref: sorted}
	spec := scalarSpec(300, 60)

	a, pctA, err := g.Draw(stats.NewShardRand(7, 2, 3), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, pctB, err := g.Draw(stats.NewShardRand(7, 2, 3), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 360 || pctA != pctB {
		t.Fatalf("draws diverged: %d values, pct %v vs %v", len(a), pctA, pctB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("value %d diverged between identical seeds", i)
		}
	}
	if math.Abs(pctA-0.99*60) > 1e-9 {
		t.Fatalf("point injection pct sum %v, want %v", pctA, 0.99*60)
	}
	// Poison sits in the tail near the commanded percentile.
	q99 := stats.QuantileSorted(sorted, 0.99)
	for i := 300; i < 360; i++ {
		if math.Abs(a[i]-q99) > 1e-3 {
			t.Fatalf("poison %d at %v, want ≈ %v", i, a[i], q99)
		}
	}
	// Different cells draw different arrivals.
	c, _, err := g.Draw(stats.NewShardRand(7, 3, 3), spec)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("distinct shards drew identical arrivals")
	}
}

func TestScalarDrawValidation(t *testing.T) {
	ok := &Scalar{Pool: []float64{1}, Ref: []float64{1}}
	if _, _, err := ok.Draw(stats.NewRand(1), Spec{HonestN: -1}); err == nil {
		t.Fatal("negative honest count accepted")
	}
	if _, _, err := ok.Draw(stats.NewRand(1), Spec{PoisonN: 1}); err == nil {
		t.Fatal("poison without an injection spec accepted")
	}
	empty := &Scalar{}
	if _, _, err := empty.Draw(stats.NewRand(1), scalarSpec(1, 0)); err == nil {
		t.Fatal("unconfigured generator accepted")
	}
}

func TestRowsDraw(t *testing.T) {
	rng := stats.NewRand(2)
	n, dim := 200, 3
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = stats.NormalSlice(rng, dim, 0, 1)
		y[i] = i % 4
	}
	g := &Rows{X: x, Y: y, Clusters: 4, PoisonLabel: -1}
	center := []float64{0, 0, 0}
	scaleQ := func(pct float64) float64 { return 1 + pct } // injective scale
	spec := Spec{HonestN: 50, PoisonN: 10, Inject: attack.PointSpec(0.95), Jitter: 0}

	rows, labels, pctSum, err := g.Draw(stats.NewShardRand(9, 0, 1), spec, center, scaleQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 60 || len(labels) != 60 {
		t.Fatalf("drew %d rows / %d labels", len(rows), len(labels))
	}
	if math.Abs(pctSum-0.95*10) > 1e-9 {
		t.Fatalf("pct sum %v", pctSum)
	}
	// Poison rows sit at the commanded distance exactly (jitter 0).
	want := scaleQ(0.95)
	for i := 50; i < 60; i++ {
		if d := stats.Euclidean(rows[i], center); math.Abs(d-want) > 1e-9 {
			t.Fatalf("poison row %d at distance %v, want %v", i, d, want)
		}
		if labels[i] < 0 || labels[i] >= 4 {
			t.Fatalf("poison label %d outside classes", labels[i])
		}
	}
	// Deterministic per cell.
	again, _, _, err := g.Draw(stats.NewShardRand(9, 0, 1), spec, center, scaleQ)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != again[i][j] {
				t.Fatalf("row %d diverged between identical seeds", i)
			}
		}
	}
	// Unlabeled dataset → nil labels.
	gu := &Rows{X: x}
	_, labels, _, err = gu.Draw(stats.NewShardRand(9, 0, 1), spec, center, scaleQ)
	if err != nil {
		t.Fatal(err)
	}
	if labels != nil {
		t.Fatal("unlabeled draw produced labels")
	}
}

func TestLDPDraw(t *testing.T) {
	rng := stats.NewRand(3)
	pool := make([]float64, 1000)
	for i := range pool {
		pool[i] = stats.Clamp(rng.NormFloat64()*0.3, -1, 1)
	}
	mech, err := ldp.NewPiecewise(2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewLDP(pool, mech)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{HonestN: 400, PoisonN: 80, Inject: attack.PointSpec(0.99)}
	a, inputSum, pctSum, err := g.Draw(stats.NewShardRand(4, 1, 2), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, inputSumB, _, err := g.Draw(stats.NewShardRand(4, 1, 2), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 480 || inputSum != inputSumB {
		t.Fatalf("draws diverged: %d reports, input sums %v vs %v", len(a), inputSum, inputSumB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d diverged between identical seeds", i)
		}
	}
	if math.Abs(pctSum-0.99*80) > 1e-9 {
		t.Fatalf("pct sum %v", pctSum)
	}
	lo, hi := mech.OutputBounds()
	for i, v := range a {
		if v < lo || v > hi {
			t.Fatalf("report %d = %v outside mechanism support [%v, %v]", i, v, lo, hi)
		}
	}
}

func TestMechWireCodec(t *testing.T) {
	pw, _ := ldp.NewPiecewise(2)
	du, _ := ldp.NewDuchi(1.5)
	grr, _ := ldp.NewGRRValue(1.2, 6)
	for _, m := range []ldp.Mechanism{pw, du, grr} {
		kind, eps, k, err := MechToWire(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := MechFromWire(kind, eps, k)
		if err != nil {
			t.Fatal(err)
		}
		if back.Epsilon() != m.Epsilon() {
			t.Fatalf("epsilon %v != %v", back.Epsilon(), m.Epsilon())
		}
		// Same code, same ε (and arity) → identical perturbation stream.
		a, b := stats.NewRand(5), stats.NewRand(5)
		for i := 0; i < 50; i++ {
			if m.Perturb(a, 0.25) != back.Perturb(b, 0.25) {
				t.Fatal("reconstructed mechanism diverged")
			}
		}
	}
	if g, ok := any(grr).(interface{ K() int }); !ok || g.K() != 6 {
		t.Fatal("GRR arity lost")
	}
	if _, _, _, err := MechToWire(nonCodable{}); err == nil {
		t.Fatal("non-codable mechanism accepted")
	}
	if _, err := MechFromWire(Mech(99), 1, 0); err == nil {
		t.Fatal("unknown mechanism code accepted")
	}
	if _, err := MechFromWire(MechGRR, 1, 1); err == nil {
		t.Fatal("GRR with one category accepted")
	}
}

type nonCodable struct{ ldp.Mechanism }
