package game

import "testing"

func paperPayoffs() UltimatumPayoffs {
	// P̄ > T̄ ≫ P > T > 0.
	return UltimatumPayoffs{PBar: 100, TBar: 50, P: 3, T: 1}
}

func TestUltimatumValidation(t *testing.T) {
	bad := []UltimatumPayoffs{
		{PBar: 1, TBar: 2, P: 3, T: 4},     // fully inverted
		{PBar: 100, TBar: 50, P: 3, T: 0},  // T must be positive
		{PBar: 50, TBar: 50, P: 3, T: 1},   // P̄ must exceed T̄
		{PBar: 100, TBar: 2, P: 3, T: 1},   // T̄ must exceed P
		{PBar: 100, TBar: 50, P: 1, T: 1},  // P must exceed T
		{PBar: 100, TBar: 50, P: -3, T: 1}, // negative
	}
	for i, u := range bad {
		if err := u.Validate(); err == nil {
			t.Errorf("case %d: %+v should fail validation", i, u)
		}
		if _, err := NewUltimatum(u); err == nil {
			t.Errorf("case %d: NewUltimatum should propagate validation error", i)
		}
	}
	if err := paperPayoffs().Validate(); err != nil {
		t.Errorf("paper payoffs should validate: %v", err)
	}
}

func TestUltimatumUniqueHardHardEquilibrium(t *testing.T) {
	g, err := NewUltimatum(paperPayoffs())
	if err != nil {
		t.Fatal(err)
	}
	eq := g.PureNash()
	// The paper: "a unique equilibrium wherein both the adversary and the
	// player opt for a tough stance".
	for _, e := range eq {
		if e.Row != Hard {
			t.Errorf("equilibrium %v has a soft collector; all equilibria must be hard", e)
		}
	}
	found := false
	for _, e := range eq {
		if e == (Outcome{Row: Hard, Col: Hard}) {
			found = true
		}
	}
	if !found {
		t.Errorf("equilibria = %v, (Hard, Hard) missing", eq)
	}
}

func TestUltimatumSoftSoftParetoDominates(t *testing.T) {
	g, err := NewUltimatum(paperPayoffs())
	if err != nil {
		t.Fatal(err)
	}
	// "a gentler approach being mutually beneficial" — (Soft, Soft) Pareto-
	// dominates (Hard, Hard).
	if !g.ParetoDominates(Outcome{Soft, Soft}, Outcome{Hard, Hard}) {
		t.Error("(Soft,Soft) should Pareto-dominate (Hard,Hard)")
	}
}

func TestUltimatumZeroSumModuloOverhead(t *testing.T) {
	// The underlying poison transfer is zero-sum; the collector additionally
	// pays trimming overhead. So P1 + P2 must equal −T on soft-trim rows and
	// −T̄ on hard-trim rows.
	u := paperPayoffs()
	g, err := NewUltimatum(u)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if got := g.P1[Soft][j] + g.P2[Soft][j]; got != -u.T {
			t.Errorf("soft row col %d: P1+P2 = %v, want %v", j, got, -u.T)
		}
		if got := g.P1[Hard][j] + g.P2[Hard][j]; got != -u.TBar {
			t.Errorf("hard row col %d: P1+P2 = %v, want %v", j, got, -u.TBar)
		}
	}
}

func TestUltimatumAdversaryPrefersHardAgainstSoft(t *testing.T) {
	g, err := NewUltimatum(paperPayoffs())
	if err != nil {
		t.Fatal(err)
	}
	br := g.BestResponsesCol(Soft)
	if len(br) != 1 || br[0] != Hard {
		t.Errorf("adversary BR to soft collector = %v, want Hard", br)
	}
	// Against a hard collector the adversary is indifferent (payoff 0).
	if br := g.BestResponsesCol(Hard); len(br) != 2 {
		t.Errorf("adversary BR to hard collector = %v, want both", br)
	}
}

func TestUltimatumStackelberg(t *testing.T) {
	g, err := NewUltimatum(paperPayoffs())
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.StackelbergRow()
	if err != nil {
		t.Fatal(err)
	}
	// One-shot commitment: soft trimming invites hard poison (−P̄−T = −101)
	// which is worse than hard trimming (−T̄ = −50). The leader trims hard —
	// exactly the static-defense trap that motivates the repeated game.
	if out.Row != Hard {
		t.Errorf("one-shot Stackelberg collector = %v, want Hard", out.Row)
	}
}
