package game

import (
	"fmt"
	"math"
)

// RepeatedParams parameterize the infinitely repeated collection game of §V
// with the paper's non-deterministic-utility setting.
type RepeatedParams struct {
	GC float64 // g_c = T̄ − P − T : collector's roundwise cooperation gain
	GA float64 // g_a = P         : adversary's roundwise cooperation gain
	D  float64 // d ∈ (0,1)       : roundwise discount rate of data utility
	P  float64 // p ∈ [0,1]       : P(judged compliant | defected), the LDP noise effect
}

// Validate checks parameter ranges.
func (rp RepeatedParams) Validate() error {
	if !(rp.D > 0 && rp.D < 1) {
		return fmt.Errorf("game: discount d = %v outside (0,1)", rp.D)
	}
	if rp.P < 0 || rp.P > 1 {
		return fmt.Errorf("game: detection-miss probability p = %v outside [0,1]", rp.P)
	}
	return nil
}

// GAC returns g_ac = (g_a + g_c)/2, the symmetric roundwise gain the
// equilibrium analysis centers on (the paper's symmetry axiom).
func (rp RepeatedParams) GAC() float64 { return (rp.GA + rp.GC) / 2 }

// MaxDelta returns the Theorem 3 bound: the adversary complies in the
// Tit-for-tat game iff the collector's utility compromise δ satisfies
// δ < (d − d·p)/(1 − d·p) · g_ac.
func (rp RepeatedParams) MaxDelta() (float64, error) {
	if err := rp.Validate(); err != nil {
		return 0, err
	}
	return (rp.D - rp.D*rp.P) / (1 - rp.D*rp.P) * rp.GAC(), nil
}

// Complies reports whether the adversary's rational choice is compliance
// under compromise delta (Theorem 3).
func (rp RepeatedParams) Complies(delta float64) (bool, error) {
	maxD, err := rp.MaxDelta()
	if err != nil {
		return false, err
	}
	return delta < maxD, nil
}

// GainComply returns the adversary's discounted gain expectation when
// complying: g_com = g0 / (1 − d), with g0 = g_ac − δ (equation 10).
func (rp RepeatedParams) GainComply(delta float64) float64 {
	return (rp.GAC() - delta) / (1 - rp.D)
}

// GainDefect returns the adversary's discounted gain expectation when
// defecting: g_def = g_ac / (1 − d·p) (equation 11).
func (rp RepeatedParams) GainDefect() float64 {
	return rp.GAC() / (1 - rp.D*rp.P)
}

// SimulateComply numerically accumulates the complying adversary's
// discounted gain over n rounds, converging to GainComply as n → ∞. It
// exists so tests can verify the closed forms of equations 10-11 against
// explicit summation.
func (rp RepeatedParams) SimulateComply(delta float64, n int) float64 {
	g0 := rp.GAC() - delta
	var sum, w float64 = 0, 1
	for i := 0; i < n; i++ {
		sum += w * g0
		w *= rp.D
	}
	return sum
}

// SimulateDefect numerically accumulates the defecting adversary's expected
// discounted gain over n rounds: each round the defector is re-admitted
// with probability p, so the round-i weight is (d·p)^i.
func (rp RepeatedParams) SimulateDefect(n int) float64 {
	var sum, w float64 = 0, 1
	for i := 0; i < n; i++ {
		sum += w * rp.GAC()
		w *= rp.D * rp.P
	}
	return sum
}

// TerminationProbability returns the probability that a Tit-for-tat game
// with per-round false-trigger probability fp has terminated by round n:
// 1 − (1−fp)^n. §V-B's motivation for the Elastic strategy is that this
// converges to 1 for any fp > 0.
func TerminationProbability(fp float64, n int) (float64, error) {
	if fp < 0 || fp > 1 {
		return 0, fmt.Errorf("game: false-positive rate %v outside [0,1]", fp)
	}
	if n < 0 {
		return 0, fmt.Errorf("game: negative round count %d", n)
	}
	return 1 - math.Pow(1-fp, float64(n)), nil
}
