// Package game implements the game-theoretic core of the paper (§III, §V):
// bimatrix games with pure and mixed strategies, Nash and Stackelberg
// solution concepts, the ultimatum game of Table I, the mixed-strategy
// reduction of arbitrary poison distributions to the [xL, xR] endpoints,
// and the repeated-game compliance analysis of Theorem 3.
package game

import (
	"fmt"
	"math"
)

// Bimatrix is a finite two-player game in normal form. Player 1 (the
// collector in this paper) chooses a row; player 2 (the adversary) chooses
// a column. P1[i][j] and P2[i][j] are the respective payoffs.
type Bimatrix struct {
	RowNames []string
	ColNames []string
	P1       [][]float64
	P2       [][]float64
}

// NewBimatrix validates shapes and builds the game.
func NewBimatrix(rowNames, colNames []string, p1, p2 [][]float64) (*Bimatrix, error) {
	r, c := len(rowNames), len(colNames)
	if r == 0 || c == 0 {
		return nil, fmt.Errorf("game: empty strategy set")
	}
	check := func(m [][]float64, who string) error {
		if len(m) != r {
			return fmt.Errorf("game: %s has %d rows, want %d", who, len(m), r)
		}
		for i, row := range m {
			if len(row) != c {
				return fmt.Errorf("game: %s row %d has %d cols, want %d", who, i, len(row), c)
			}
			for j, v := range row {
				if math.IsNaN(v) {
					return fmt.Errorf("game: %s[%d][%d] is NaN", who, i, j)
				}
			}
		}
		return nil
	}
	if err := check(p1, "P1"); err != nil {
		return nil, err
	}
	if err := check(p2, "P2"); err != nil {
		return nil, err
	}
	return &Bimatrix{RowNames: rowNames, ColNames: colNames, P1: p1, P2: p2}, nil
}

// Rows and Cols return the strategy counts.
func (g *Bimatrix) Rows() int { return len(g.RowNames) }
func (g *Bimatrix) Cols() int { return len(g.ColNames) }

// IsZeroSum reports whether P1 + P2 == 0 everywhere (within tol).
func (g *Bimatrix) IsZeroSum(tol float64) bool {
	for i := range g.P1 {
		for j := range g.P1[i] {
			if math.Abs(g.P1[i][j]+g.P2[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// BestResponsesRow returns the set of row indices that are best responses
// to column j.
func (g *Bimatrix) BestResponsesRow(j int) []int {
	best := math.Inf(-1)
	for i := range g.P1 {
		if g.P1[i][j] > best {
			best = g.P1[i][j]
		}
	}
	var out []int
	for i := range g.P1 {
		if g.P1[i][j] == best {
			out = append(out, i)
		}
	}
	return out
}

// BestResponsesCol returns the set of column indices that are best
// responses to row i.
func (g *Bimatrix) BestResponsesCol(i int) []int {
	best := math.Inf(-1)
	for j := range g.P2[i] {
		if g.P2[i][j] > best {
			best = g.P2[i][j]
		}
	}
	var out []int
	for j := range g.P2[i] {
		if g.P2[i][j] == best {
			out = append(out, j)
		}
	}
	return out
}

// Outcome is a pure strategy profile.
type Outcome struct {
	Row, Col int
}

// PureNash returns all pure-strategy Nash equilibria: profiles where each
// strategy is a (weak) best response to the other.
func (g *Bimatrix) PureNash() []Outcome {
	var out []Outcome
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			if contains(g.BestResponsesRow(j), i) && contains(g.BestResponsesCol(i), j) {
				out = append(out, Outcome{Row: i, Col: j})
			}
		}
	}
	return out
}

// ParetoDominates reports whether outcome a strictly improves at least one
// player over b without hurting the other.
func (g *Bimatrix) ParetoDominates(a, b Outcome) bool {
	p1a, p2a := g.P1[a.Row][a.Col], g.P2[a.Row][a.Col]
	p1b, p2b := g.P1[b.Row][b.Col], g.P2[b.Row][b.Col]
	return p1a >= p1b && p2a >= p2b && (p1a > p1b || p2a > p2b)
}

// StackelbergRow solves the sequential game with the row player (the
// collector) as leader: for each committed row, the column player
// best-responds (breaking ties in the leader's favor, the standard strong
// Stackelberg assumption); the leader picks the row maximizing her payoff.
func (g *Bimatrix) StackelbergRow() (Outcome, error) {
	if g.Rows() == 0 {
		return Outcome{}, fmt.Errorf("game: empty game")
	}
	best := Outcome{Row: -1}
	bestV := math.Inf(-1)
	for i := 0; i < g.Rows(); i++ {
		brs := g.BestResponsesCol(i)
		// Strong Stackelberg tie-breaking: follower picks the best response
		// most favorable to the leader.
		j := brs[0]
		for _, cand := range brs[1:] {
			if g.P1[i][cand] > g.P1[i][j] {
				j = cand
			}
		}
		if g.P1[i][j] > bestV {
			bestV = g.P1[i][j]
			best = Outcome{Row: i, Col: j}
		}
	}
	return best, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
