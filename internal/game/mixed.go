package game

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// MixedStrategy is a probability distribution over a player's pure
// strategies.
type MixedStrategy []float64

// Validate checks the distribution sums to 1 and is non-negative.
func (m MixedStrategy) Validate() error {
	var s float64
	for i, p := range m {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("game: mixed strategy weight[%d] = %v", i, p)
		}
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("game: mixed strategy sums to %v", s)
	}
	return nil
}

// ExpectedPayoffs returns both players' expected payoffs when the row
// player mixes with x and the column player with y.
func (g *Bimatrix) ExpectedPayoffs(x, y MixedStrategy) (float64, float64, error) {
	if len(x) != g.Rows() || len(y) != g.Cols() {
		return 0, 0, fmt.Errorf("game: mixed strategy lengths %d/%d for %d×%d game",
			len(x), len(y), g.Rows(), g.Cols())
	}
	if err := x.Validate(); err != nil {
		return 0, 0, err
	}
	if err := y.Validate(); err != nil {
		return 0, 0, err
	}
	var u1, u2 float64
	for i := range g.P1 {
		for j := range g.P1[i] {
			w := x[i] * y[j]
			u1 += w * g.P1[i][j]
			u2 += w * g.P2[i][j]
		}
	}
	return u1, u2, nil
}

// EndpointMix is the paper's §III-C2 reduction: any poison value (or value
// distribution) on the domain [xL, xR] is equivalent to a mixed strategy
// over the endpoints, x = pL·xL + pR·xR with pL + pR = 1.
type EndpointMix struct {
	XL, XR float64
	PL, PR float64
}

// ReducePoint expresses a single point x ∈ [xL, xR] as an endpoint mix.
func ReducePoint(x, xL, xR float64) (EndpointMix, error) {
	if !(xL < xR) {
		return EndpointMix{}, fmt.Errorf("game: domain [%v, %v] is empty", xL, xR)
	}
	if x < xL || x > xR {
		return EndpointMix{}, fmt.Errorf("game: point %v outside [%v, %v]", x, xL, xR)
	}
	pR := (x - xL) / (xR - xL)
	return EndpointMix{XL: xL, XR: xR, PL: 1 - pR, PR: pR}, nil
}

// ReduceDistribution expresses an arbitrary poison-value sample over
// [xL, xR] as an endpoint mix with the same mean — the additive-payoff
// argument of §III-C2. Values outside the domain are clamped, mirroring the
// paper's observation that a rational adversary never plays outside
// [xL, xR].
func ReduceDistribution(xs []float64, xL, xR float64) (EndpointMix, error) {
	if len(xs) == 0 {
		return EndpointMix{}, stats.ErrEmpty
	}
	if !(xL < xR) {
		return EndpointMix{}, fmt.Errorf("game: domain [%v, %v] is empty", xL, xR)
	}
	var sum float64
	for _, x := range xs {
		sum += stats.Clamp(x, xL, xR)
	}
	return ReducePoint(sum/float64(len(xs)), xL, xR)
}

// Value returns the point the mix represents, pL·xL + pR·xR.
func (m EndpointMix) Value() float64 {
	return m.PL*m.XL + m.PR*m.XR
}

// ExpectedPayoff evaluates a payoff function that is linear-in-position
// under the mix. For any affine payoff this equals payoff(m.Value()) —
// the property the paper's completeness argument relies on, covered by
// property tests.
func (m EndpointMix) ExpectedPayoff(payoff func(x float64) float64) float64 {
	return m.PL*payoff(m.XL) + m.PR*payoff(m.XR)
}
