package game

import "fmt"

// UltimatumPayoffs are the four primitives of the paper's Table I, subject
// to P̄ > T̄ ≫ P > T > 0: soft/hard poison gains P, P̄ for the adversary and
// soft/hard trimming overheads T, T̄ for the collector.
type UltimatumPayoffs struct {
	PBar float64 // P̄ — adversary gain when playing hard and untrimmed
	TBar float64 // T̄ — collector overhead of trimming hard (at xL)
	P    float64 // P  — adversary gain when playing soft
	T    float64 // T  — collector overhead of trimming soft (at xR)
}

// Validate enforces the ordering P̄ > T̄ > P > T > 0.
func (u UltimatumPayoffs) Validate() error {
	if !(u.PBar > u.TBar && u.TBar > u.P && u.P > u.T && u.T > 0) {
		return fmt.Errorf("game: ultimatum payoffs must satisfy P̄ > T̄ > P > T > 0, got P̄=%v T̄=%v P=%v T=%v",
			u.PBar, u.TBar, u.P, u.T)
	}
	return nil
}

// Strategy indices shared by the ultimatum game and its tests.
const (
	Soft = 0
	Hard = 1
)

// NewUltimatum builds the one-shot collection game of Table I. Rows are the
// collector's stance, columns the adversary's. Cell payoffs follow §III-D:
//
//	(Soft_c, Soft_a): collector −P−T (poison survives, cheap trim), adversary P
//	(Soft_c, Hard_a): collector −P̄−T (hard poison survives),         adversary P̄
//	(Hard_c,   ·   ): collector −T̄ (everything above xL removed),     adversary 0
//
// Note: the arXiv rendering of Table I garbles the overbars; the cells here
// are reconstructed from the surrounding text, and the tests verify the
// paper's claims — a unique (Hard, Hard) equilibrium that is Pareto-
// dominated by (Soft, Soft), mirroring the prisoner's dilemma.
func NewUltimatum(u UltimatumPayoffs) (*Bimatrix, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	p1 := [][]float64{
		{-u.P - u.T, -u.PBar - u.T},
		{-u.TBar, -u.TBar},
	}
	p2 := [][]float64{
		{u.P, u.PBar},
		{0, 0},
	}
	return NewBimatrix([]string{"Soft", "Hard"}, []string{"Soft", "Hard"}, p1, p2)
}
