package game

import (
	"math"
	"testing"
)

func prisonersDilemma(t *testing.T) *Bimatrix {
	t.Helper()
	// Classic PD: (C,C)=(3,3), (C,D)=(0,5), (D,C)=(5,0), (D,D)=(1,1).
	g, err := NewBimatrix(
		[]string{"C", "D"}, []string{"C", "D"},
		[][]float64{{3, 0}, {5, 1}},
		[][]float64{{3, 5}, {0, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBimatrixValidation(t *testing.T) {
	if _, err := NewBimatrix(nil, []string{"a"}, nil, nil); err == nil {
		t.Error("empty rows should error")
	}
	if _, err := NewBimatrix([]string{"a"}, []string{"b"},
		[][]float64{{1, 2}}, [][]float64{{1}}); err == nil {
		t.Error("ragged P1 should error")
	}
	if _, err := NewBimatrix([]string{"a"}, []string{"b"},
		[][]float64{{math.NaN()}}, [][]float64{{1}}); err == nil {
		t.Error("NaN payoff should error")
	}
	if _, err := NewBimatrix([]string{"a", "b"}, []string{"c"},
		[][]float64{{1}}, [][]float64{{1}, {2}}); err == nil {
		t.Error("wrong row count should error")
	}
}

func TestPureNashPrisonersDilemma(t *testing.T) {
	g := prisonersDilemma(t)
	eq := g.PureNash()
	if len(eq) != 1 || eq[0] != (Outcome{Row: 1, Col: 1}) {
		t.Errorf("PD equilibria = %v, want unique (D,D)", eq)
	}
	// (C,C) Pareto-dominates (D,D).
	if !g.ParetoDominates(Outcome{0, 0}, Outcome{1, 1}) {
		t.Error("(C,C) should Pareto-dominate (D,D)")
	}
	if g.ParetoDominates(Outcome{1, 1}, Outcome{0, 0}) {
		t.Error("(D,D) should not Pareto-dominate (C,C)")
	}
}

func TestPureNashMatchingPennies(t *testing.T) {
	g, err := NewBimatrix(
		[]string{"H", "T"}, []string{"H", "T"},
		[][]float64{{1, -1}, {-1, 1}},
		[][]float64{{-1, 1}, {1, -1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if eq := g.PureNash(); len(eq) != 0 {
		t.Errorf("matching pennies has no pure equilibrium, got %v", eq)
	}
	if !g.IsZeroSum(1e-12) {
		t.Error("matching pennies is zero-sum")
	}
}

func TestBestResponses(t *testing.T) {
	g := prisonersDilemma(t)
	if br := g.BestResponsesRow(0); len(br) != 1 || br[0] != 1 {
		t.Errorf("BR to opponent C = %v, want D", br)
	}
	if br := g.BestResponsesCol(1); len(br) != 1 || br[0] != 1 {
		t.Errorf("BR to row D = %v, want D", br)
	}
}

func TestBestResponsesTies(t *testing.T) {
	g, err := NewBimatrix(
		[]string{"a", "b"}, []string{"x", "y"},
		[][]float64{{1, 1}, {1, 1}},
		[][]float64{{2, 2}, {2, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if br := g.BestResponsesRow(0); len(br) != 2 {
		t.Errorf("constant game should have all rows as BR, got %v", br)
	}
	if eq := g.PureNash(); len(eq) != 4 {
		t.Errorf("constant game should have 4 weak equilibria, got %v", eq)
	}
}

func TestStackelbergRow(t *testing.T) {
	// A game where commitment helps: the Stackelberg leader earns more than
	// in the simultaneous equilibrium.
	g, err := NewBimatrix(
		[]string{"Up", "Down"}, []string{"Left", "Right"},
		[][]float64{{2, 4}, {1, 3}},
		[][]float64{{1, 0}, {0, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.StackelbergRow()
	if err != nil {
		t.Fatal(err)
	}
	// Committing Up ⇒ follower plays Left (1>0) ⇒ leader gets 2.
	// Committing Down ⇒ follower plays Right (2>0) ⇒ leader gets 3.
	if out != (Outcome{Row: 1, Col: 1}) {
		t.Errorf("Stackelberg outcome = %v, want (Down, Right)", out)
	}
}

func TestStackelbergTieBreaksForLeader(t *testing.T) {
	g, err := NewBimatrix(
		[]string{"r"}, []string{"x", "y"},
		[][]float64{{0, 10}},
		[][]float64{{5, 5}}, // follower indifferent
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.StackelbergRow()
	if err != nil {
		t.Fatal(err)
	}
	if out.Col != 1 {
		t.Errorf("strong Stackelberg should break ties for the leader, got col %d", out.Col)
	}
}

func TestIsZeroSumTolerance(t *testing.T) {
	g := prisonersDilemma(t)
	if g.IsZeroSum(1e-12) {
		t.Error("PD is not zero-sum")
	}
}
