package game

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRepeatedParamsValidate(t *testing.T) {
	bad := []RepeatedParams{
		{GC: 1, GA: 1, D: 0, P: 0.5},
		{GC: 1, GA: 1, D: 1, P: 0.5},
		{GC: 1, GA: 1, D: 0.9, P: -0.1},
		{GC: 1, GA: 1, D: 0.9, P: 1.1},
	}
	for i, rp := range bad {
		if err := rp.Validate(); err == nil {
			t.Errorf("case %d: %+v should fail", i, rp)
		}
	}
	good := RepeatedParams{GC: 2, GA: 4, D: 0.9, P: 0.3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if got := good.GAC(); got != 3 {
		t.Errorf("GAC = %v, want 3", got)
	}
}

func TestTheorem3Boundary(t *testing.T) {
	rp := RepeatedParams{GC: 2, GA: 4, D: 0.9, P: 0.3}
	maxD, err := rp.MaxDelta()
	if err != nil {
		t.Fatal(err)
	}
	want := (0.9 - 0.9*0.3) / (1 - 0.9*0.3) * 3
	if math.Abs(maxD-want) > 1e-12 {
		t.Errorf("MaxDelta = %v, want %v", maxD, want)
	}
	// Just inside the bound: comply. Just outside: defect.
	if ok, _ := rp.Complies(maxD - 1e-9); !ok {
		t.Error("δ just below the bound should comply")
	}
	if ok, _ := rp.Complies(maxD + 1e-9); ok {
		t.Error("δ just above the bound should defect")
	}
}

func TestTheorem3MatchesGainComparison(t *testing.T) {
	// The compliance condition must be exactly g_com > g_def.
	cases := []RepeatedParams{
		{GC: 2, GA: 4, D: 0.9, P: 0.3},
		{GC: 1, GA: 1, D: 0.5, P: 0.0},
		{GC: 5, GA: 2, D: 0.99, P: 0.9},
	}
	for _, rp := range cases {
		maxD, err := rp.MaxDelta()
		if err != nil {
			t.Fatal(err)
		}
		for _, delta := range []float64{0, maxD / 2, maxD * 0.99, maxD * 1.01, maxD * 2} {
			comply, _ := rp.Complies(delta)
			gainsSayComply := rp.GainComply(delta) > rp.GainDefect()
			if comply != gainsSayComply {
				t.Errorf("params %+v δ=%v: Complies=%v but gain comparison=%v",
					rp, delta, comply, gainsSayComply)
			}
		}
	}
}

func TestClosedFormsMatchSimulation(t *testing.T) {
	rp := RepeatedParams{GC: 2, GA: 4, D: 0.9, P: 0.3}
	delta := 0.5
	simC := rp.SimulateComply(delta, 2000)
	if math.Abs(simC-rp.GainComply(delta)) > 1e-6 {
		t.Errorf("simulated comply %v vs closed form %v", simC, rp.GainComply(delta))
	}
	simD := rp.SimulateDefect(2000)
	if math.Abs(simD-rp.GainDefect()) > 1e-6 {
		t.Errorf("simulated defect %v vs closed form %v", simD, rp.GainDefect())
	}
}

func TestPEqualsOneAlwaysDefect(t *testing.T) {
	// "Should p = 1 ... they would always opt to defect given the lack of
	// consequences": MaxDelta is 0, so no positive δ sustains compliance.
	rp := RepeatedParams{GC: 2, GA: 4, D: 0.9, P: 1}
	maxD, err := rp.MaxDelta()
	if err != nil {
		t.Fatal(err)
	}
	if maxD != 0 {
		t.Errorf("MaxDelta at p=1 = %v, want 0", maxD)
	}
	if ok, _ := rp.Complies(0.001); ok {
		t.Error("any compromise at p=1 should fail to induce compliance")
	}
}

func TestPToZeroMaxTrust(t *testing.T) {
	// As p → 0 the bound approaches d·g_ac, the most forgiving setting.
	rp := RepeatedParams{GC: 2, GA: 4, D: 0.9, P: 0}
	maxD, err := rp.MaxDelta()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(maxD-0.9*3) > 1e-12 {
		t.Errorf("MaxDelta at p=0 = %v, want d·gac = 2.7", maxD)
	}
}

// Property: MaxDelta is monotonically decreasing in p (a stealthier
// adversary demands a smaller collector compromise) and increasing in d
// (more patient players sustain more cooperation).
func TestMaxDeltaMonotonicity(t *testing.T) {
	f := func(rd, rp1, rp2 uint8) bool {
		d := 0.01 + 0.98*float64(rd)/255
		p1 := float64(rp1) / 255
		p2 := float64(rp2) / 255
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		a := RepeatedParams{GC: 2, GA: 4, D: d, P: p1}
		b := RepeatedParams{GC: 2, GA: 4, D: d, P: p2}
		ma, err1 := a.MaxDelta()
		mb, err2 := b.MaxDelta()
		if err1 != nil || err2 != nil {
			return false
		}
		return ma >= mb-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTerminationProbability(t *testing.T) {
	p, err := TerminationProbability(0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(0.9, 10)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("TerminationProbability = %v, want %v", p, want)
	}
	if p, _ := TerminationProbability(0, 1000); p != 0 {
		t.Errorf("zero false-positive rate should never terminate, got %v", p)
	}
	// Converges to 1 — the §V-B motivation for Elastic.
	if p, _ := TerminationProbability(0.05, 1000); p < 0.999999 {
		t.Errorf("long-run termination probability = %v, want →1", p)
	}
	if _, err := TerminationProbability(-0.1, 5); err == nil {
		t.Error("negative rate should error")
	}
	if _, err := TerminationProbability(0.5, -1); err == nil {
		t.Error("negative rounds should error")
	}
}
