package game

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixedStrategyValidate(t *testing.T) {
	if err := (MixedStrategy{0.5, 0.5}).Validate(); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	for _, m := range []MixedStrategy{
		{0.5, 0.6},
		{-0.1, 1.1},
		{math.NaN(), 1},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %v should fail validation", m)
		}
	}
}

func TestExpectedPayoffs(t *testing.T) {
	g := prisonersDilemma(t)
	// Pure (D,D) through the mixed API.
	u1, u2, err := g.ExpectedPayoffs(MixedStrategy{0, 1}, MixedStrategy{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u1 != 1 || u2 != 1 {
		t.Errorf("pure (D,D) = (%v,%v), want (1,1)", u1, u2)
	}
	// Uniform mixing.
	u1, u2, err = g.ExpectedPayoffs(MixedStrategy{0.5, 0.5}, MixedStrategy{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u1-2.25) > 1e-12 || math.Abs(u2-2.25) > 1e-12 {
		t.Errorf("uniform mix = (%v,%v), want (2.25,2.25)", u1, u2)
	}
	if _, _, err := g.ExpectedPayoffs(MixedStrategy{1}, MixedStrategy{0, 1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestReducePoint(t *testing.T) {
	m, err := ReducePoint(0.925, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.PL-0.75) > 1e-12 || math.Abs(m.PR-0.25) > 1e-12 {
		t.Errorf("mix = (%v, %v), want (0.75, 0.25)", m.PL, m.PR)
	}
	if math.Abs(m.Value()-0.925) > 1e-12 {
		t.Errorf("Value = %v", m.Value())
	}
	if _, err := ReducePoint(0.5, 0.9, 1.0); err == nil {
		t.Error("out-of-domain point should error")
	}
	if _, err := ReducePoint(0.5, 1, 1); err == nil {
		t.Error("empty domain should error")
	}
}

func TestReduceEndpoints(t *testing.T) {
	for _, c := range []struct {
		x, pl, pr float64
	}{
		{0.9, 1, 0}, {1.0, 0, 1},
	} {
		m, err := ReducePoint(c.x, 0.9, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.PL-c.pl) > 1e-12 || math.Abs(m.PR-c.pr) > 1e-12 {
			t.Errorf("ReducePoint(%v) = (%v,%v)", c.x, m.PL, m.PR)
		}
	}
}

func TestReduceDistribution(t *testing.T) {
	xs := []float64{0.9, 1.0, 0.95, 0.95}
	m, err := ReduceDistribution(xs, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Value()-0.95) > 1e-12 {
		t.Errorf("distribution mean = %v, want 0.95", m.Value())
	}
	if _, err := ReduceDistribution(nil, 0, 1); err == nil {
		t.Error("empty distribution should error")
	}
	// Out-of-domain values are clamped.
	m, err = ReduceDistribution([]float64{2, 2}, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.PR != 1 {
		t.Errorf("clamped mix PR = %v, want 1", m.PR)
	}
}

// Property (§III-C2 completeness): for any affine payoff function, the
// expected payoff of the endpoint mix equals the payoff at the represented
// point — any poison distribution reduces to a two-point mixed strategy.
func TestEndpointMixLinearity(t *testing.T) {
	f := func(rawX, a, b float64) bool {
		if math.IsNaN(rawX) || math.IsInf(rawX, 0) ||
			math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 ||
			math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e6 {
			return true
		}
		// Map rawX into [0.9, 1.0].
		x := 0.9 + 0.1*(math.Abs(rawX)-math.Floor(math.Abs(rawX)))
		m, err := ReducePoint(x, 0.9, 1.0)
		if err != nil {
			return false
		}
		payoff := func(v float64) float64 { return a*v + b }
		return math.Abs(m.ExpectedPayoff(payoff)-payoff(x)) < 1e-6*(1+math.Abs(a)+math.Abs(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: reducing a multi-point distribution and mixing payoffs is the
// same as averaging payoffs pointwise, for affine payoffs.
func TestDistributionReductionAdditivity(t *testing.T) {
	f := func(raw []float64, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				r = 0
			}
			xs[i] = 0.9 + 0.1*(math.Abs(r)-math.Floor(math.Abs(r)))
		}
		m, err := ReduceDistribution(xs, 0.9, 1.0)
		if err != nil {
			return false
		}
		payoff := func(v float64) float64 { return a * v }
		var direct float64
		for _, x := range xs {
			direct += payoff(x)
		}
		direct /= float64(len(xs))
		return math.Abs(m.ExpectedPayoff(payoff)-direct) < 1e-6*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
