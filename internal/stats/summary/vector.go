package summary

import "fmt"

// Vector maintains one quantile Stream per coordinate of a row stream. It
// replaces the "retain every accepted row, re-sort every coordinate each
// round" pattern for coordinate-wise medians (the collector's robust center
// in internal/collect) with O(dim · log(εn)/ε) memory and O(dim) amortized
// work per accepted row.
type Vector struct {
	dims []*Stream
}

// NewVector returns a Vector of dim coordinate streams with rank-error
// budget eps (DefaultEpsilon when 0), each sized for about hint rows.
func NewVector(dim int, eps float64, hint int) (*Vector, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("summary: vector dim %d", dim)
	}
	v := &Vector{dims: make([]*Stream, dim)}
	for i := range v.dims {
		st, err := New(eps, hint)
		if err != nil {
			return nil, err
		}
		v.dims[i] = st
	}
	return v, nil
}

// VectorFromState reconstructs a Vector from per-coordinate stream states
// (States' counterpart). The restored vector answers every later query bit
// for bit like the original — the row-game checkpoint relies on this.
func VectorFromState(states []*StreamState) (*Vector, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("summary: vector from %d coordinate states", len(states))
	}
	v := &Vector{dims: make([]*Stream, len(states))}
	for i, st := range states {
		if st == nil {
			return nil, fmt.Errorf("summary: nil state for vector coordinate %d", i)
		}
		s, err := FromState(st)
		if err != nil {
			return nil, err
		}
		v.dims[i] = s
	}
	return v, nil
}

// States snapshots every coordinate stream (Stream.State) in coordinate
// order, the serializable form VectorFromState restores.
func (v *Vector) States() []*StreamState {
	out := make([]*StreamState, len(v.dims))
	for i, st := range v.dims {
		out[i] = st.State()
	}
	return out
}

// Dim returns the number of coordinates.
func (v *Vector) Dim() int { return len(v.dims) }

// Epsilon returns the rank-error budget the coordinate streams were built
// with — exposed for the wire encoder, which must ship the budget alongside
// the sketch so a receiver can account ε across encode/merge.
func (v *Vector) Epsilon() float64 {
	if len(v.dims) == 0 {
		return 0
	}
	return v.dims[0].Epsilon()
}

// Coord returns the live stream of coordinate i (not a copy). The wire
// encoder snapshots it; a merging coordinator absorbs per-coordinate shard
// summaries into it. Callers must not retain it across a Reset.
func (v *Vector) Coord(i int) *Stream { return v.dims[i] }

// Count returns the number of rows pushed.
func (v *Vector) Count() int {
	if len(v.dims) == 0 {
		return 0
	}
	return v.dims[0].Count()
}

// PushRow absorbs one row; its length must equal Dim.
func (v *Vector) PushRow(row []float64) error {
	if len(row) != len(v.dims) {
		return fmt.Errorf("summary: row dim %d, vector dim %d", len(row), len(v.dims))
	}
	for i, x := range row {
		v.dims[i].Push(x)
	}
	return nil
}

// PushRows absorbs a slice of rows through each coordinate's batch path:
// one pooled column gather and one PushBatch per dimension, so ingesting a
// round's accepted rows costs dim chunk flushes instead of dim·rows
// item pushes. Rank-equivalent to row-wise PushRow within each stream's ε.
func (v *Vector) PushRows(rows [][]float64) error {
	for _, row := range rows {
		if len(row) != len(v.dims) {
			return fmt.Errorf("summary: row dim %d, vector dim %d", len(row), len(v.dims))
		}
	}
	sc := batchPool.Get().(*batchScratch)
	col := sc.vals[:0]
	for d, st := range v.dims {
		col = col[:0]
		for _, row := range rows {
			col = append(col, row[d])
		}
		st.PushBatch(col)
	}
	sc.vals = col
	batchPool.Put(sc)
	return nil
}

// Medians writes the per-coordinate ε-approximate medians into buf (reused
// when it has the right length) and returns it.
func (v *Vector) Medians(buf []float64) []float64 {
	return v.Quantiles(buf, 0.5)
}

// Quantiles writes the per-coordinate ε-approximate q-th quantiles into buf
// (reused when it has the right length) and returns it.
func (v *Vector) Quantiles(buf []float64, q float64) []float64 {
	out := buf
	if len(out) != len(v.dims) {
		out = make([]float64, len(v.dims))
	}
	for i, st := range v.dims {
		out[i] = st.Query(q)
	}
	return out
}
