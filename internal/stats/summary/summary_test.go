package summary

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stats"
)

// streamCase generates one named test stream. The four shapes mirror the
// regimes the collection game produces: uniform scales, heavy-tailed
// distance scales, adversarially ordered arrivals (sorted and sawtooth
// streams are the classic worst case for naive sketches), and
// duplicate-heavy quantized data.
type streamCase struct {
	name string
	gen  func(rng *rand.Rand, n int) []float64
}

func streamCases() []streamCase {
	return []streamCase{
		{"uniform", func(rng *rand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Float64()
			}
			return xs
		}},
		{"heavy-tailed", func(rng *rand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				// Pareto(α=1.1): infinite-variance tail.
				xs[i] = math.Pow(1-rng.Float64(), -1/1.1)
			}
			return xs
		}},
		{"ascending", func(rng *rand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		}},
		{"descending", func(rng *rand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		}},
		{"sawtooth", func(rng *rand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i % 97)
			}
			return xs
		}},
		{"duplicate-heavy", func(rng *rand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Intn(7))
			}
			return xs
		}},
	}
}

// rankInterval returns the exact empirical-CDF interval [P(<v), P(≤v)] of v
// in sorted data — the slack between the two absorbs ties.
func rankInterval(sorted []float64, v float64) (lo, hi float64) {
	n := float64(len(sorted))
	less := sort.SearchFloat64s(sorted, v)
	leq := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return float64(less) / n, float64(leq) / n
}

// Property: for every stream shape, Query(q) agrees with the exact quantile
// within the configured ε — the returned value's true rank is within ε of q.
func TestQueryWithinEpsilonAcrossStreams(t *testing.T) {
	const (
		n   = 20000
		eps = 0.01
	)
	for _, tc := range streamCases() {
		t.Run(tc.name, func(t *testing.T) {
			xs := tc.gen(stats.NewRand(1), n)
			st, err := New(eps, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range xs {
				st.Push(x)
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for q := 0.0; q <= 1.0001; q += 0.02 {
				v := st.Query(q)
				lo, hi := rankInterval(sorted, v)
				if q < lo-eps || q > hi+eps {
					t.Errorf("Query(%.2f) = %v with true rank [%v, %v]: outside ε=%v",
						q, v, lo, hi, eps)
				}
				// Cross-check against the exact estimator: the summary value
				// must sit between the exact quantiles at q∓ε.
				if lov, hiv := stats.QuantileSorted(sorted, q-eps), stats.QuantileSorted(sorted, q+eps); v < lov-1e-12 || v > hiv+1e-12 {
					t.Errorf("Query(%.2f) = %v outside exact [Q(q−ε), Q(q+ε)] = [%v, %v]",
						q, v, lov, hiv)
				}
			}
		})
	}
}

// Property: Rank(v) agrees with the exact empirical CDF within ε on every
// stream shape.
func TestRankWithinEpsilonAcrossStreams(t *testing.T) {
	const (
		n   = 20000
		eps = 0.01
	)
	for _, tc := range streamCases() {
		t.Run(tc.name, func(t *testing.T) {
			xs := tc.gen(stats.NewRand(2), n)
			st, err := New(eps, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range xs {
				st.Push(x)
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			span := sorted[len(sorted)-1] - sorted[0]
			for f := 0.0; f <= 1.0001; f += 0.05 {
				v := sorted[0] + f*span
				lo, hi := rankInterval(sorted, v)
				r := st.Rank(v)
				if r < lo-eps || r > hi+eps {
					t.Errorf("Rank(%v) = %v with true CDF [%v, %v]: outside ε=%v",
						v, r, lo, hi, eps)
				}
			}
		})
	}
}

// Property: merging exact shard summaries is order-independent — any merge
// tree over the same shards yields identical entries — and merging
// compressed summaries keeps every order within the shared ε bound.
func TestMergeAssociativity(t *testing.T) {
	rng := stats.NewRand(3)
	shards := make([][]float64, 4)
	gens := streamCases()
	all := []float64{}
	for i := range shards {
		shards[i] = gens[i].gen(rng, 3000)
		all = append(all, shards[i]...)
	}
	sort.Float64s(all)

	exact := func(order []int) *Summary {
		m := &Summary{}
		for _, i := range order {
			m.Merge(FromUnsorted(shards[i]))
		}
		return m
	}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	base := exact(orders[0])
	for _, ord := range orders[1:] {
		m := exact(ord)
		if m.Size() != base.Size() {
			t.Fatalf("order %v: %d entries vs %d", ord, m.Size(), base.Size())
		}
		for i, e := range m.Entries() {
			if e != base.Entries()[i] {
				t.Fatalf("order %v: entry %d = %+v vs %+v", ord, i, e, base.Entries()[i])
			}
		}
	}

	// Compressed shards, merged in every order: same ε bound for all.
	const b = 400
	epsBound := 1.0/b + 2.0/float64(len(all)) // one compress per shard + tie slack
	for _, ord := range orders {
		m := &Summary{}
		for _, i := range ord {
			s := FromUnsorted(shards[i])
			s.Compress(b)
			m.Merge(s)
		}
		if got := m.ApproxError(); got > epsBound+1e-12 {
			t.Errorf("order %v: merged ApproxError %v > bound %v", ord, got, epsBound)
		}
		for q := 0.05; q < 1; q += 0.1 {
			v := m.Query(q)
			lo, hi := rankInterval(all, v)
			if q < lo-epsBound || q > hi+epsBound {
				t.Errorf("order %v: Query(%.2f) rank [%v, %v] outside bound %v",
					ord, q, lo, hi, epsBound)
			}
		}
	}
}

// Property: ε_merge = max(ε₁, ε₂) — merging never exceeds the worse input's
// error bound.
func TestMergeErrorIsMaxOfInputs(t *testing.T) {
	rng := stats.NewRand(4)
	mk := func(n, b int) *Summary {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		s := FromUnsorted(xs)
		s.Compress(b)
		return s
	}
	a, b := mk(5000, 100), mk(8000, 400)
	ea, eb := a.ApproxError(), b.ApproxError()
	maxEps := math.Max(ea, eb)
	a.Merge(b)
	if got := a.ApproxError(); got > maxEps+1e-12 {
		t.Errorf("merged error %v > max(%v, %v)", got, ea, eb)
	}
}

// Property: ε_compress = ε + 1/b — Compress(b) bounds both the size and the
// added error.
func TestCompressBound(t *testing.T) {
	rng := stats.NewRand(5)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	s := FromUnsorted(xs)
	for _, b := range []int{2000, 500, 100, 20} {
		before := s.ApproxError()
		s.Compress(b)
		if s.Size() > b+1 {
			t.Errorf("Compress(%d) left %d entries", b, s.Size())
		}
		if after := s.ApproxError(); after > before+1.0/float64(b)+1e-12 {
			t.Errorf("Compress(%d): error %v > %v + 1/%d", b, after, before, b)
		}
	}
}

// Property: weight w at value v is equivalent to pushing v w times.
func TestWeightedEquivalence(t *testing.T) {
	rng := stats.NewRand(6)
	wtd, err := New(0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		v := rng.NormFloat64()
		w := float64(1 + rng.Intn(4))
		wtd.PushWeighted(v, w)
		for k := 0; k < int(w); k++ {
			rep.Push(v)
		}
	}
	if a, b := wtd.TotalWeight(), rep.TotalWeight(); math.Abs(a-b) > 1e-9 {
		t.Fatalf("total weight %v vs %v", a, b)
	}
	for q := 0.05; q < 1; q += 0.05 {
		a, b := wtd.Query(q), rep.Query(q)
		// Both are ε-approximate against the same weighted distribution.
		if ra, rb := rep.Rank(a), rep.Rank(b); math.Abs(ra-rb) > 3*0.01 {
			t.Errorf("q=%.2f: weighted %v (rank %v) vs repeated %v (rank %v)", q, a, ra, b, rb)
		}
	}
}

// Property: sharded collection — per-shard streams absorbed into a
// coordinator agree with one stream over the concatenated data within the
// summed error budgets.
func TestAbsorbShards(t *testing.T) {
	rng := stats.NewRand(7)
	const shards, perShard, eps = 8, 5000, 0.01
	coord, err := New(eps, shards*perShard)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]float64, 0, shards*perShard)
	for s := 0; s < shards; s++ {
		st, err := New(eps, perShard)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perShard; i++ {
			v := rng.NormFloat64() + float64(s) // shards see shifted slices
			st.Push(v)
			all = append(all, v)
		}
		coord.AbsorbStream(st)
	}
	if coord.Count() != len(all) {
		t.Fatalf("coordinator count %d, want %d", coord.Count(), len(all))
	}
	sort.Float64s(all)
	for q := 0.05; q < 1; q += 0.05 {
		v := coord.Query(q)
		lo, hi := rankInterval(all, v)
		// Absorb adds one compression per shard on top of the shard ε.
		bound := 3 * eps
		if q < lo-bound || q > hi+bound {
			t.Errorf("Query(%.2f) rank [%v, %v] outside %v", q, lo, hi, bound)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	if _, err := New(1.5, 0); err == nil {
		t.Error("epsilon ≥ 1 must error")
	}
	if _, err := New(-0.1, 0); err == nil {
		t.Error("negative epsilon must error")
	}
	st, err := New(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(st.Query(0.5)) || !math.IsNaN(st.Rank(0)) {
		t.Error("empty stream must report NaN")
	}
	st.Push(42)
	if st.Query(0) != 42 || st.Query(1) != 42 || st.Median() != 42 {
		t.Error("single-value stream must return the value at every quantile")
	}
	if st.Min() != 42 || st.Max() != 42 || st.Count() != 1 {
		t.Error("min/max/count wrong on single value")
	}
	st.Reset()
	if st.Count() != 0 || !math.IsNaN(st.Query(0.5)) {
		t.Error("Reset must empty the stream")
	}
	// NaN and nonpositive weights are ignored, not absorbed.
	st.Push(math.NaN())
	st.PushWeighted(1, 0)
	st.PushWeighted(1, -3)
	if st.Count() != 0 {
		t.Error("NaN/nonpositive-weight pushes must be ignored")
	}

	if _, err := NewVector(0, 0.01, 0); err == nil {
		t.Error("zero-dim vector must error")
	}
	vec, err := NewVector(2, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vec.PushRow([]float64{1}); err == nil {
		t.Error("dim mismatch must error")
	}
	if err := vec.PushRow([]float64{1, 10}); err != nil {
		t.Fatal(err)
	}
	if err := vec.PushRow([]float64{3, 30}); err != nil {
		t.Fatal(err)
	}
	med := vec.Medians(nil)
	if len(med) != 2 || med[0] < 1 || med[0] > 3 || med[1] < 10 || med[1] > 30 {
		t.Errorf("vector medians = %v", med)
	}
	if vec.Count() != 2 || vec.Dim() != 2 {
		t.Errorf("vector count/dim = %d/%d", vec.Count(), vec.Dim())
	}
}

// The long-stream regression: pushing far past the size hint must keep the
// error close to ε rather than collapsing.
func TestHintOvershoot(t *testing.T) {
	const eps = 0.02
	st, err := New(eps, 1000) // hint 50× too small
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(8)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.Float64()
		st.Push(xs[i])
	}
	sort.Float64s(xs)
	for q := 0.1; q < 1; q += 0.1 {
		v := st.Query(q)
		lo, hi := rankInterval(xs, v)
		if q < lo-2*eps || q > hi+2*eps {
			t.Errorf("overshoot Query(%.1f) rank [%v, %v] drifted past 2ε", q, lo, hi)
		}
	}
}
