// Package summary implements ε-approximate, mergeable weighted quantile
// summaries in the Greenwald–Khanna (SIGMOD 2001) compress-merge family, in
// the weighted formulation used by XGBoost (KDD 2016, appendix). A summary
// is a short sorted list of entries {value, weight, minRank, maxRank} whose
// rank intervals bracket the true cumulative weight of the underlying
// stream; quantile and rank queries resolve against the intervals in
// O(log size) without ever re-sorting the data.
//
// The two operations that make the structure a subsystem rather than a
// one-shot sketch:
//
//   - Merge: combines summaries of disjoint streams without losing
//     precision — ε_merged = max(ε₁, ε₂). This is what allows sharded
//     collection (per-worker summaries merged by the coordinator) and the
//     per-game incremental summaries in internal/collect.
//   - Compress(b): prunes a summary to ≈ b+1 entries at the cost of an
//     additional 1/b rank error — ε_compressed = ε + 1/b.
//
// Stream wraps the two in the classic multi-level compress-merge scheme so
// that an unbounded Push stream keeps a configured error budget; Vector
// maintains one Stream per coordinate for streaming coordinate-wise
// medians. See DESIGN.md §5 for the exact-vs-P²-vs-summary trade-offs.
package summary

import (
	"fmt"
	"math"
	"sort"
)

// Entry is one compressed point of a summary. MinRank and MaxRank bound the
// cumulative weight of the stream at Value: the total weight of elements
// strictly below Value lies in [MinRank, MaxRank−Weight], and the weight of
// elements ≤ Value lies in [MinRank+Weight, MaxRank].
type Entry struct {
	Value   float64
	Weight  float64
	MinRank float64
	MaxRank float64
}

// prevMaxRank upper-bounds the cumulative weight strictly below this entry.
func (e Entry) prevMaxRank() float64 { return e.MaxRank - e.Weight }

// nextMinRank lower-bounds the cumulative weight up to and including this
// entry.
func (e Entry) nextMinRank() float64 { return e.MinRank + e.Weight }

func (e Entry) midRank() float64 { return (e.MinRank + e.MaxRank) / 2 }

// Summary is an ε-approximate quantile summary: entries sorted by value
// with consistent rank intervals. The zero value is an empty summary.
type Summary struct {
	entries []Entry
}

// FromSorted builds an exact summary (ε = 0) from values sorted ascending,
// each carrying the paired weight (all 1 when weights is nil). Duplicate
// values are combined into one entry.
func FromSorted(values, weights []float64) *Summary {
	s := &Summary{entries: make([]Entry, 0, len(values))}
	cum := 0.0
	for i, v := range values {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if n := len(s.entries); n > 0 && s.entries[n-1].Value == v {
			s.entries[n-1].Weight += w
			s.entries[n-1].MaxRank += w
			cum += w
			continue
		}
		s.entries = append(s.entries, Entry{Value: v, Weight: w, MinRank: cum, MaxRank: cum + w})
		cum += w
	}
	return s
}

// FromUnsorted sorts a copy of values and builds an exact summary.
func FromUnsorted(values []float64) *Summary {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return FromSorted(sorted, nil)
}

// FromEntries reconstructs a summary from externally supplied entries — the
// decode half of a serialized summary (internal/wire). It validates the
// structural invariants every operation in this package relies on: values
// strictly increasing and finite-ordered, weights positive, rank bounds
// consistent (MaxRank ≥ MinRank + Weight) and monotone across entries. The
// entries slice is copied.
func FromEntries(entries []Entry) (*Summary, error) {
	var prev Entry
	for i, e := range entries {
		if math.IsNaN(e.Value) {
			return nil, fmt.Errorf("summary: entry %d: NaN value", i)
		}
		if !(e.Weight > 0) {
			return nil, fmt.Errorf("summary: entry %d: weight %v", i, e.Weight)
		}
		if e.MinRank < 0 || e.MaxRank < e.MinRank+e.Weight {
			return nil, fmt.Errorf("summary: entry %d: rank interval [%v, %v] inconsistent with weight %v",
				i, e.MinRank, e.MaxRank, e.Weight)
		}
		if i > 0 {
			if e.Value <= prev.Value {
				return nil, fmt.Errorf("summary: entry %d: value %v not above predecessor %v", i, e.Value, prev.Value)
			}
			if e.MinRank < prev.MinRank || e.MaxRank < prev.MaxRank {
				return nil, fmt.Errorf("summary: entry %d: rank bounds regress", i)
			}
		}
		prev = e
	}
	return &Summary{entries: append([]Entry(nil), entries...)}, nil
}

// ApproxSum estimates the sum of the summarized stream (Σ value·weight) from
// the surviving entries. Compression drops entries without reassigning their
// weight, so the raw entry sum is scaled by TotalWeight/Σweights; the result
// is exact for uncompressed summaries and within ε·W·range in general.
func (s *Summary) ApproxSum() float64 {
	var sw, vw float64
	for _, e := range s.entries {
		sw += e.Weight
		vw += e.Value * e.Weight
	}
	if sw == 0 {
		return 0
	}
	return vw * s.TotalWeight() / sw
}

// Clone returns a deep copy.
func (s *Summary) Clone() *Summary {
	return &Summary{entries: append([]Entry(nil), s.entries...)}
}

// Size returns the number of entries.
func (s *Summary) Size() int { return len(s.entries) }

// Entries exposes the underlying entries (read-only by convention).
func (s *Summary) Entries() []Entry { return s.entries }

// TotalWeight returns the total weight of the summarized stream.
func (s *Summary) TotalWeight() float64 {
	if len(s.entries) == 0 {
		return 0
	}
	return s.entries[len(s.entries)-1].MaxRank
}

// Merge folds other into s, so that s summarizes the union of the two
// disjoint streams. The merged error is max(ε_s, ε_other): merging is
// lossless in the GK sense, which is what makes per-shard summaries
// combinable by a coordinator. Runs in O(|s| + |other|).
func (s *Summary) Merge(other *Summary) {
	if other == nil || len(other.entries) == 0 {
		return
	}
	if len(s.entries) == 0 {
		s.entries = append([]Entry(nil), other.entries...)
		return
	}
	a, b := s.entries, other.entries
	merged := make([]Entry, 0, len(a)+len(b))
	// aLow/bLow lower-bound the cumulative weight consumed so far from each
	// side; the upper bound for an emitted entry comes from the first
	// not-yet-consumed entry on the opposite side (prevMaxRank), or the
	// opposite side's total weight once it is exhausted.
	var aLow, bLow float64
	aTotal, bTotal := s.TotalWeight(), other.TotalWeight()
	var i, j int
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Value < b[j].Value:
			merged = append(merged, Entry{
				Value:   a[i].Value,
				Weight:  a[i].Weight,
				MinRank: a[i].MinRank + bLow,
				MaxRank: a[i].MaxRank + b[j].prevMaxRank(),
			})
			aLow = a[i].nextMinRank()
			i++
		case b[j].Value < a[i].Value:
			merged = append(merged, Entry{
				Value:   b[j].Value,
				Weight:  b[j].Weight,
				MinRank: b[j].MinRank + aLow,
				MaxRank: b[j].MaxRank + a[i].prevMaxRank(),
			})
			bLow = b[j].nextMinRank()
			j++
		default: // equal values collapse into one entry with summed ranks
			merged = append(merged, Entry{
				Value:   a[i].Value,
				Weight:  a[i].Weight + b[j].Weight,
				MinRank: a[i].MinRank + b[j].MinRank,
				MaxRank: a[i].MaxRank + b[j].MaxRank,
			})
			aLow = a[i].nextMinRank()
			bLow = b[j].nextMinRank()
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		merged = append(merged, Entry{
			Value:   a[i].Value,
			Weight:  a[i].Weight,
			MinRank: a[i].MinRank + bLow,
			MaxRank: a[i].MaxRank + bTotal,
		})
	}
	for ; j < len(b); j++ {
		merged = append(merged, Entry{
			Value:   b[j].Value,
			Weight:  b[j].Weight,
			MinRank: b[j].MinRank + aLow,
			MaxRank: b[j].MaxRank + aTotal,
		})
	}
	s.entries = merged
}

// Compress prunes the summary to at most b+1 entries by keeping the
// extremes and the entries nearest the b−1 interior rank grid points
// k·W/b. The pruned summary's error grows by at most 1/b:
// ε_compressed = ε + 1/b.
func (s *Summary) Compress(b int) {
	if b < 2 {
		b = 2
	}
	n := len(s.entries)
	if n <= b+1 {
		return
	}
	s.compressTargets(gridTargets(s.TotalWeight(), b))
}

// gridTargets yields the b−1 interior rank grid points k·W/b ascending —
// the Compress(b) pruning grid.
func gridTargets(w float64, b int) func() (float64, bool) {
	k := 0
	return func() (float64, bool) {
		k++
		if k >= b {
			return 0, false
		}
		return float64(k) * w / float64(b), true
	}
}

// focusGridTargets yields the Compress(b) grid unioned with a tighten×
// finer grid restricted to the rank window [lo, hi] (fractions of total
// weight), ascending — the CompressFocused pruning grid. Coincident
// targets may repeat; the selection pass drops them.
func focusGridTargets(w float64, b int, lo, hi float64, tighten int) func() (float64, bool) {
	fine := float64(b) * float64(tighten)
	fj := int(math.Ceil(lo * fine))
	if fj < 1 {
		fj = 1
	}
	fEnd := int(math.Floor(hi * fine))
	if fEnd > int(fine)-1 {
		fEnd = int(fine) - 1
	}
	k := 0
	var pendingC, pendingF float64
	haveC, haveF := false, false
	return func() (float64, bool) {
		if !haveC {
			k++
			if k < b {
				pendingC, haveC = float64(k)*w/float64(b), true
			}
		}
		if !haveF && fj <= fEnd {
			pendingF, haveF = float64(fj)*w/fine, true
			fj++
		}
		switch {
		case haveC && (!haveF || pendingC <= pendingF):
			haveC = false
			return pendingC, true
		case haveF:
			haveF = false
			return pendingF, true
		default:
			return 0, false
		}
	}
}

// CompressFocused is Compress(b) with an adaptive-ε window: on top of the
// coarse grid k·W/b it keeps the entries nearest a tighten×-finer grid
// j·W/(b·tighten) restricted to the rank window [lo, hi] (fractions of
// total weight). Inside the window the added error is at most
// 1/(b·tighten); everywhere else the Compress(b) bound holds — focusing
// only ever adds grid points. The survivor count is bounded by
// b+1 plus the window's fine points, ≈ b·(1 + (hi−lo)·tighten).
func (s *Summary) CompressFocused(b int, lo, hi float64, tighten int) {
	if tighten <= 1 || hi <= lo {
		s.Compress(b)
		return
	}
	if b < 2 {
		b = 2
	}
	n := len(s.entries)
	if n <= b+1 {
		return
	}
	s.compressTargets(focusGridTargets(s.TotalWeight(), b, lo, hi, tighten))
}

// compressTargets is the shared one-pass pruning core: for each target rank
// produced by next (ascending) it keeps the entry whose rank midpoint is
// nearest, writing survivors in place. Both the targets and the midpoints
// are nondecreasing, so the read cursor never backs up. The first and last
// entries always survive. Callers guarantee len(entries) ≥ 2.
func (s *Summary) compressTargets(next func() (float64, bool)) {
	n := len(s.entries)
	wi, lastIdx := 1, 0
	i := 1
	for i < n-1 {
		target, ok := next()
		if !ok {
			break
		}
		for i < n-1 && s.entries[i].midRank() < target {
			i++
		}
		if i >= n-1 {
			break
		}
		j := i
		if target-s.entries[j-1].midRank() <= s.entries[j].midRank()-target {
			j--
		}
		if j > lastIdx {
			s.entries[wi] = s.entries[j]
			wi++
			lastIdx = j
		}
	}
	s.entries[wi] = s.entries[n-1]
	s.entries = s.entries[:wi+1]
}

// selectIdx returns the index of the entry whose rank interval midpoint is
// closest to target.
func (s *Summary) selectIdx(target float64) int {
	// Midpoints are nondecreasing: binary search the first ≥ target, then
	// compare with its predecessor.
	i := sort.Search(len(s.entries), func(i int) bool {
		return s.entries[i].midRank() >= target
	})
	if i == len(s.entries) {
		return i - 1
	}
	if i > 0 && target-s.entries[i-1].midRank() <= s.entries[i].midRank()-target {
		return i - 1
	}
	return i
}

// Query returns a value whose rank is within ε·W of q·W — the ε-approximate
// q-th quantile (q clamped to [0,1]). NaN on an empty summary.
func (s *Summary) Query(q float64) float64 {
	if len(s.entries) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return s.entries[s.selectIdx(q*s.TotalWeight())].Value
}

// Rank estimates the fraction of the stream's weight that is ≤ v, the
// empirical CDF at v, within ε. NaN on an empty summary.
func (s *Summary) Rank(v float64) float64 {
	if len(s.entries) == 0 {
		return math.NaN()
	}
	w := s.TotalWeight()
	// Last entry with Value ≤ v.
	i := sort.Search(len(s.entries), func(i int) bool {
		return s.entries[i].Value > v
	}) - 1
	if i < 0 {
		return 0
	}
	if i == len(s.entries)-1 {
		return 1
	}
	lower := s.entries[i].nextMinRank()
	upper := s.entries[i+1].prevMaxRank()
	r := (lower + upper) / 2 / w
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// ApproxError returns the summary's rank-uncertainty bound as a fraction of
// total weight: the largest rank gap a query can fall into. A fresh exact
// summary reports 0; Compress(b) grows it by at most 1/b and Merge by
// nothing beyond max of the inputs.
func (s *Summary) ApproxError() float64 {
	if len(s.entries) == 0 {
		return 0
	}
	var maxGap float64
	for i := 1; i < len(s.entries); i++ {
		e := s.entries[i]
		if g := e.MaxRank - e.MinRank - e.Weight; g > maxGap {
			maxGap = g
		}
		if g := e.prevMaxRank() - s.entries[i-1].nextMinRank(); g > maxGap {
			maxGap = g
		}
	}
	return maxGap / s.TotalWeight()
}
