package summary

import (
	"math/rand"
	"testing"
)

// entriesEqual reports bit-exact equality of two summaries' entry lists —
// the equality the aggregator tier (internal/agg) depends on.
func entriesEqual(a, b *Summary) bool {
	ae, be := a.Entries(), b.Entries()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// The aggregator tier regroups the coordinator's flat left-fold of worker
// summaries into an arbitrary merge tree, and the record-for-record
// invariants of DESIGN.md §13 rest on that regrouping being bit-exact: for
// unit-weight streams every rank bound is an integer-valued float far below
// 2^53, Merge only ever adds rank bounds of disjoint streams, and float64
// addition of such integers is exact in any grouping. This test locks the
// property — merging k per-shard summaries left-to-right, right-to-left,
// pairwise bottom-up and in fan-in-f groups must produce identical entries.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, tc := range streamCases() {
		t.Run(tc.name, func(t *testing.T) {
			const shards = 16
			parts := make([]*Summary, shards)
			for i := range parts {
				parts[i] = FromUnsorted(tc.gen(rng, 200+rng.Intn(100)))
			}
			clone := func() []*Summary {
				out := make([]*Summary, len(parts))
				for i, p := range parts {
					out[i] = p.Clone()
				}
				return out
			}

			// Reference: the coordinator's flat left fold.
			flat := clone()
			ref := flat[0]
			for _, p := range flat[1:] {
				ref.Merge(p)
			}

			// Right-to-left fold.
			rtl := clone()
			acc := rtl[len(rtl)-1]
			for i := len(rtl) - 2; i >= 0; i-- {
				rtl[i].Merge(acc)
				acc = rtl[i]
			}
			if !entriesEqual(ref, acc) {
				t.Error("right-to-left fold diverged from the flat left fold")
			}

			// Fan-in-f trees: merge consecutive groups of f, level by level —
			// exactly what a height-h aggregator tier does.
			for _, fanin := range []int{2, 3, 4, 8} {
				cur := clone()
				for len(cur) > 1 {
					var next []*Summary
					for lo := 0; lo < len(cur); lo += fanin {
						hi := lo + fanin
						if hi > len(cur) {
							hi = len(cur)
						}
						g := cur[lo]
						for _, p := range cur[lo+1 : hi] {
							g.Merge(p)
						}
						next = append(next, g)
					}
					cur = next
				}
				if !entriesEqual(ref, cur[0]) {
					t.Errorf("fan-in-%d tree merge diverged from the flat left fold", fanin)
				}
			}
		})
	}
}
