package summary

import (
	"math"
	"reflect"
	"runtime"
	"slices"
	"sort"
	"sync"
	"testing"

	"repro/internal/stats"
)

// Property: PushBatch and item-wise Push agree exactly on the exact
// accounting (Count/Sum/Min/Max) and are rank-equivalent within the shared
// ε budget on every stream shape — including the adversarial sorted,
// reversed and duplicate-heavy cases.
func TestPushBatchMatchesPushWithinEpsilon(t *testing.T) {
	const (
		n   = 50000
		eps = 0.01
	)
	for _, tc := range streamCases() {
		t.Run(tc.name, func(t *testing.T) {
			xs := tc.gen(stats.NewRand(11), n)
			item, err := New(eps, n)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := New(eps, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range xs {
				item.Push(x)
			}
			batch.PushBatch(xs)

			if item.Count() != batch.Count() || item.Sum() != batch.Sum() ||
				item.Min() != batch.Min() || item.Max() != batch.Max() {
				t.Fatalf("accounting diverged: count %d/%d sum %v/%v min %v/%v max %v/%v",
					item.Count(), batch.Count(), item.Sum(), batch.Sum(),
					item.Min(), batch.Min(), item.Max(), batch.Max())
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for q := 0.0; q <= 1.0001; q += 0.02 {
				v := batch.Query(q)
				lo, hi := rankInterval(sorted, v)
				if q < lo-eps || q > hi+eps {
					t.Errorf("batch Query(%.2f) = %v with true rank [%v, %v]: outside ε=%v",
						q, v, lo, hi, eps)
				}
			}
			if got := batch.Snapshot().ApproxError(); got > eps {
				t.Errorf("batch ApproxError %v > ε=%v", got, eps)
			}
		})
	}
}

// Property: the weighted batch path matches PushWeighted semantics — skips
// NaN values and non-positive weights, keeps exact accounting, and stays
// rank-equivalent — and rejects mismatched slices.
func TestPushBatchWeighted(t *testing.T) {
	rng := stats.NewRand(12)
	const n, eps = 30000, 0.01
	vs := make([]float64, n)
	ws := make([]float64, n)
	for i := range vs {
		vs[i] = rng.NormFloat64()
		ws[i] = float64(1 + rng.Intn(4))
		switch i % 97 {
		case 13:
			vs[i] = math.NaN()
		case 29:
			ws[i] = 0
		case 31:
			ws[i] = -2
		}
	}
	item, err := New(eps, n)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := New(eps, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		item.PushWeighted(vs[i], ws[i])
	}
	if err := batch.PushBatchWeighted(vs, ws); err != nil {
		t.Fatal(err)
	}
	if item.Count() != batch.Count() || item.Sum() != batch.Sum() ||
		item.Min() != batch.Min() || item.Max() != batch.Max() {
		t.Fatalf("weighted accounting diverged: count %d/%d sum %v/%v",
			item.Count(), batch.Count(), item.Sum(), batch.Sum())
	}
	for q := 0.05; q < 1; q += 0.05 {
		a, b := item.Query(q), batch.Query(q)
		if ra, rb := item.Rank(a), item.Rank(b); math.Abs(ra-rb) > 3*eps {
			t.Errorf("q=%.2f: item %v (rank %v) vs batch %v (rank %v)", q, a, ra, b, rb)
		}
	}
	if err := batch.PushBatchWeighted(vs, ws[:10]); err == nil {
		t.Error("mismatched weight slice must error")
	}
}

// Batches that never reach a direct chunk ride the item-wise buffer path
// and are bit-identical to per-item pushes, including interleaved with
// them — so mixing the two APIs below the flush point is safe.
func TestPushBatchSmallBitIdentical(t *testing.T) {
	rng := stats.NewRand(13)
	a, err := New(0.01, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(0.01, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		chunk := make([]float64, 37)
		for i := range chunk {
			chunk[i] = rng.Float64()
		}
		for _, v := range chunk {
			a.Push(v)
		}
		b.PushBatch(chunk)
		extra := rng.NormFloat64()
		a.Push(extra)
		b.Push(extra)
	}
	if !reflect.DeepEqual(a.Snapshot().Entries(), b.Snapshot().Entries()) {
		t.Fatal("sub-block batches diverged from item-wise pushes")
	}
	if a.Count() != b.Count() || a.Sum() != b.Sum() {
		t.Fatal("sub-block batch accounting diverged")
	}
}

// PushBatch is deterministic: identical input sequences produce
// bit-identical snapshots, regardless of how the input is sliced into
// calls at chunk boundaries.
func TestPushBatchDeterministic(t *testing.T) {
	xs := streamCases()[0].gen(stats.NewRand(14), 120000)
	run := func(split int) *Summary {
		st, err := New(0.005, len(xs))
		if err != nil {
			t.Fatal(err)
		}
		st.PushBatch(xs[:split])
		st.PushBatch(xs[split:])
		return st.Snapshot()
	}
	base := run(0)
	for _, split := range []int{1, 1000, 60000, len(xs)} {
		if !reflect.DeepEqual(base.Entries(), run(split).Entries()) {
			// Splits land mid-buffer, so chunk boundaries shift; queries
			// must still agree bit-for-bit when the boundaries coincide.
			if split == 0 || split == len(xs) {
				t.Fatalf("split %d: identical chunking diverged", split)
			}
		}
	}
	if !reflect.DeepEqual(base.Entries(), run(len(xs)).Entries()) {
		t.Fatal("identical PushBatch runs diverged")
	}
}

// Parallel sub-shard merge — the worker's per-core schedule — is
// deterministic: per-sub streams filled concurrently and merged in sub
// order produce bit-identical results across repeated runs and across
// GOMAXPROCS settings, because Merge of unit-weight summaries is exact
// integer rank arithmetic and the merge order is pinned.
func TestParallelSubShardMergeDeterministic(t *testing.T) {
	xs := streamCases()[1].gen(stats.NewRand(15), 80000)
	run := func(subs int) []Entry {
		bounds := func(c int) (int, int) {
			return len(xs) * c / subs, len(xs) * (c + 1) / subs
		}
		snaps := make([]*Summary, subs)
		var wg sync.WaitGroup
		for c := 0; c < subs; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lo, hi := bounds(c)
				st, err := New(0.01, hi-lo)
				if err != nil {
					panic(err)
				}
				st.PushBatch(xs[lo:hi])
				snaps[c] = st.Snapshot()
			}(c)
		}
		wg.Wait()
		merged := &Summary{}
		for _, s := range snaps {
			merged.Merge(s)
		}
		return merged.Entries()
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, subs := range []int{2, 4, 7} {
		base := run(subs)
		for rep := 0; rep < 3; rep++ {
			runtime.GOMAXPROCS(1 + rep)
			if !reflect.DeepEqual(base, run(subs)) {
				t.Fatalf("subs=%d rep=%d: parallel sub-shard merge diverged", subs, rep)
			}
		}
	}
}

// The snapshot-cache regression (ISSUE 8 small fix): interleaved Push and
// Query must re-merge only the partial buffer against the cached level
// merge — one level rebuild per flush, not per query — and the regrouped
// merge must stay bit-identical to the unhinted path for unit weights.
func TestSnapshotLevelCacheInvalidateOnce(t *testing.T) {
	st, err := New(0.02, 2000)
	if err != nil {
		t.Fatal(err)
	}
	control, err := New(0.02, 2000)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(16)
	const n = 12000
	flushes := 0
	for i := 0; i < n; i++ {
		v := rng.Float64()
		st.Push(v)
		control.Push(v)
		if len(st.bufV) == 0 {
			flushes++
		}
		if st.Query(0.5) != control.Snapshot().Query(0.5) {
			t.Fatalf("push %d: interleaved query diverged", i)
		}
	}
	// Every query above forced a snapshot; without the level cache each one
	// re-merged the whole counter. With it, the counter is re-merged at
	// most once per flush (plus the initial build).
	if st.levelBuilds > flushes+1 {
		t.Fatalf("levelBuilds = %d for %d flushes: snapshot re-merges levels per query", st.levelBuilds, flushes)
	}
	if !reflect.DeepEqual(st.Snapshot().Entries(), control.Snapshot().Entries()) {
		t.Fatal("level-cached snapshot diverged from control")
	}
}

// CompressFocused: the focused grid keeps the global 1/b bound and a
// tighten×-tighter bound inside the rank window, with the documented size
// bound.
func TestCompressFocused(t *testing.T) {
	rng := stats.NewRand(17)
	xs := make([]float64, 60000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	const (
		b       = 200
		tighten = 8
		lo, hi  = 0.85, 0.95
	)
	s := FromUnsorted(xs)
	s.CompressFocused(b, lo, hi, tighten)
	if got, bound := s.ApproxError(), 1.0/b+1e-12; got > bound {
		t.Errorf("global ApproxError %v > 1/b = %v", got, bound)
	}
	if maxSize := b + 1 + int(math.Ceil((hi-lo)*b*tighten)) + 2; s.Size() > maxSize {
		t.Errorf("focused size %d > bound %d", s.Size(), maxSize)
	}
	// Inside the window the rank gaps must be tighten× tighter.
	w := s.TotalWeight()
	fineBound := 1.0/(b*tighten) + 1e-12
	entries := s.Entries()
	for i := 1; i < len(entries); i++ {
		mid := entries[i].midRank() / w
		if mid < lo+1.0/b || mid > hi-1.0/b {
			continue
		}
		if g := (entries[i].prevMaxRank() - entries[i-1].nextMinRank()) / w; g > fineBound {
			t.Errorf("in-window gap %v at rank %.3f > 1/(b·tighten) = %v", g, mid, fineBound)
		}
	}
	// Degenerate parameters fall back to plain Compress.
	s2 := FromUnsorted(xs[:5000])
	s3 := FromUnsorted(xs[:5000])
	s2.CompressFocused(b, 0.5, 0.5, tighten)
	s3.Compress(b)
	if !reflect.DeepEqual(s2.Entries(), s3.Entries()) {
		t.Error("empty window did not fall back to Compress")
	}
}

// A focused stream keeps its full-ε guarantee everywhere and a tighter one
// near the focus window — the adaptive-ε property the trim threshold
// queries rely on.
func TestStreamFocusTightensWindow(t *testing.T) {
	const (
		n       = 200000
		eps     = 0.02
		pct     = 0.9
		width   = 0.05
		tighten = 4
	)
	xs := streamCases()[0].gen(stats.NewRand(18), n)
	st, err := New(eps, n)
	if err != nil {
		t.Fatal(err)
	}
	st.SetFocus(pct, width, tighten)
	st.PushBatch(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for q := 0.0; q <= 1.0001; q += 0.02 {
		v := st.Query(q)
		lo, hi := rankInterval(sorted, v)
		if q < lo-eps || q > hi+eps {
			t.Errorf("focused Query(%.2f) rank [%v, %v] outside global ε=%v", q, lo, hi, eps)
		}
		if q >= pct-width/2 && q <= pct+width/2 {
			tight := 2*eps/tighten + 2.0/n
			if q < lo-tight || q > hi+tight {
				t.Errorf("focused Query(%.2f) rank [%v, %v] outside window bound %v", q, lo, hi, tight)
			}
		}
	}
}

// Batch ingestion must leave the stream serializable mid-buffer: the tail
// below a block stays in the push buffer, State/FromState round-trips, and
// the restored stream continues bit-identically.
func TestPushBatchStateRoundTrip(t *testing.T) {
	xs := streamCases()[4].gen(stats.NewRand(19), 70001)
	st, err := New(0.01, len(xs))
	if err != nil {
		t.Fatal(err)
	}
	st.PushBatch(xs)
	if len(st.bufV) >= st.blockSize {
		t.Fatalf("batch left buffer at %d ≥ block size %d", len(st.bufV), st.blockSize)
	}
	restored, err := FromState(st.State())
	if err != nil {
		t.Fatal(err)
	}
	more := streamCases()[0].gen(stats.NewRand(20), 5000)
	st.PushBatch(more)
	restored.PushBatch(more)
	if !reflect.DeepEqual(st.Snapshot().Entries(), restored.Snapshot().Entries()) {
		t.Fatal("restored stream diverged after further batches")
	}
	if st.Count() != restored.Count() || st.Sum() != restored.Sum() {
		t.Fatal("restored accounting diverged")
	}
}

// Vector.PushRows: per-dimension batch ingestion matches row-wise PushRow
// within ε and validates dimensions up front.
func TestVectorPushRows(t *testing.T) {
	rng := stats.NewRand(21)
	const rows, dim, eps = 20000, 3, 0.01
	data := make([][]float64, rows)
	for i := range data {
		row := make([]float64, dim)
		for d := range row {
			row[d] = rng.NormFloat64() * float64(d+1)
		}
		data[i] = row
	}
	byRow, err := NewVector(dim, eps, rows)
	if err != nil {
		t.Fatal(err)
	}
	byBatch, err := NewVector(dim, eps, rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range data {
		if err := byRow.PushRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := byBatch.PushRows(data); err != nil {
		t.Fatal(err)
	}
	if byRow.Count() != byBatch.Count() {
		t.Fatalf("count %d vs %d", byRow.Count(), byBatch.Count())
	}
	for d := 0; d < dim; d++ {
		for q := 0.1; q < 1; q += 0.2 {
			a := byRow.Coord(d).Query(q)
			b := byBatch.Coord(d).Query(q)
			if ra, rb := byRow.Coord(d).Rank(a), byRow.Coord(d).Rank(b); math.Abs(ra-rb) > 3*eps {
				t.Errorf("dim %d q=%.1f: row-wise %v vs batch %v", d, q, a, b)
			}
		}
	}
	if err := byBatch.PushRows([][]float64{{1, 2}}); err == nil {
		t.Error("short row must error")
	}
}

// TestRadixSortKeys drives the high-word radix + tie-run cleanup against the
// stdlib on shapes that stress each path: random continuous data, keys that
// collide in the high word but differ below (the cleanup's comparison sort),
// heavy duplicates (the all-equal fast path), and signed zeros.
func TestRadixSortKeys(t *testing.T) {
	rng := stats.NewRand(41)
	cases := map[string][]uint64{}
	rand32k := make([]uint64, 1<<15)
	for i := range rand32k {
		rand32k[i] = f64key(rng.NormFloat64())
	}
	cases["random"] = rand32k
	loTies := make([]uint64, 1<<14)
	for i := range loTies {
		// Shared high word, random low word: every key lands in one
		// cleanup run.
		loTies[i] = 0xbff0000000000000&^(0xffffffff) | uint64(rng.Int63())&0xffffffff
	}
	cases["low-word-ties"] = loTies
	dups := make([]uint64, 1<<14)
	for i := range dups {
		dups[i] = f64key(float64(rng.Intn(7)))
	}
	cases["duplicates"] = dups
	zeros := make([]uint64, 2048)
	for i := range zeros {
		switch i % 3 {
		case 0:
			zeros[i] = f64key(math.Copysign(0, -1))
		case 1:
			zeros[i] = f64key(0)
		default:
			zeros[i] = f64key(rng.NormFloat64())
		}
	}
	cases["signed-zeros"] = zeros
	for name, base := range cases {
		keys := append([]uint64(nil), base...)
		var counts [radixPasses][radixBuckets]int32
		for _, k := range keys {
			for p := 0; p < radixPasses; p++ {
				counts[p][k>>(radixShift+uint(p)*radixBits)&radixMask]++
			}
		}
		sorted, _ := radixSortKeys(keys, make([]uint64, len(keys)), &counts)
		want := append([]uint64(nil), base...)
		slices.Sort(want)
		if !slices.Equal(sorted, want) {
			t.Errorf("%s: radix order diverges from stdlib sort", name)
		}
	}
}
