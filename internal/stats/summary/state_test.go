package summary

import (
	"math"
	"testing"

	"math/rand"
)

// State→FromState is a bit-faithful fork: every observable of the restored
// stream matches the original, and stays matching after both absorb the
// same continuation — the property checkpointed coordinator resume rests
// on.
func TestStreamStateRoundTripContinues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st, err := New(0.01, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		st.Push(rng.NormFloat64())
	}
	// Leave a partial buffer and some weighted pushes in the state.
	for i := 0; i < 37; i++ {
		st.PushWeighted(rng.NormFloat64(), 2)
	}

	restored, err := FromState(st.State())
	if err != nil {
		t.Fatal(err)
	}
	same := func(stage string) {
		t.Helper()
		if st.Count() != restored.Count() || st.Sum() != restored.Sum() {
			t.Fatalf("%s: count %d/%d sum %v/%v", stage, st.Count(), restored.Count(), st.Sum(), restored.Sum())
		}
		if st.Min() != restored.Min() || st.Max() != restored.Max() {
			t.Fatalf("%s: min/max diverged", stage)
		}
		for q := 0.01; q < 1; q += 0.07 {
			if st.Query(q) != restored.Query(q) {
				t.Fatalf("%s: Query(%v) %v vs %v", stage, q, st.Query(q), restored.Query(q))
			}
		}
		a, b := st.Snapshot().Entries(), restored.Snapshot().Entries()
		if len(a) != len(b) {
			t.Fatalf("%s: snapshot sizes %d vs %d", stage, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: snapshot entry %d diverged", stage, i)
			}
		}
	}
	same("after restore")

	// Identical continuations stay identical (crossing flushes and carries).
	cont := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		v := cont.NormFloat64()
		st.Push(v)
		restored.Push(v)
	}
	other, err := New(0.02, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		other.Push(cont.NormFloat64())
	}
	st.AbsorbCounted(other.Snapshot(), other.Count(), other.Sum())
	restored.AbsorbCounted(other.Snapshot(), other.Count(), other.Sum())
	same("after continuation")
}

func TestStreamStateEmptyAndUnweighted(t *testing.T) {
	st, err := New(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := st.State()
	if s.BufW != nil {
		t.Fatal("unit-weight stream state grew a weight buffer")
	}
	if !math.IsInf(s.Min, 1) || !math.IsInf(s.Max, -1) {
		t.Fatal("empty extrema not infinite")
	}
	restored, err := FromState(s)
	if err != nil {
		t.Fatal(err)
	}
	restored.Push(1)
	if restored.Count() != 1 || restored.Query(0.5) != 1 {
		t.Fatal("restored empty stream broken")
	}
}

// State() is a deep copy: mutating the live stream afterwards must not leak
// into a state held for serialization.
func TestStreamStateIsolation(t *testing.T) {
	st, err := New(0.05, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		st.Push(float64(i))
	}
	s := st.State()
	buf := append([]float64(nil), s.BufV...)
	for i := 0; i < 500; i++ {
		st.Push(float64(i))
	}
	for i := range buf {
		if s.BufV[i] != buf[i] {
			t.Fatal("state buffer mutated by later pushes")
		}
	}
}

func TestStreamStateValidation(t *testing.T) {
	good := func() *StreamState {
		st, err := New(0.05, 100)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			st.Push(float64(i))
		}
		return st.State()
	}
	cases := map[string]func(*StreamState){
		"nil":            nil,
		"bad epsilon":    func(s *StreamState) { s.Epsilon = 1.5 },
		"bad block size": func(s *StreamState) { s.BlockSize = 0 },
		"overfull buf":   func(s *StreamState) { s.BufV = make([]float64, s.BlockSize) },
		"weight skew":    func(s *StreamState) { s.BufW = make([]float64, len(s.BufV)+1) },
		"negative count": func(s *StreamState) { s.Count = -1 },
	}
	for name, mutate := range cases {
		var s *StreamState
		if mutate != nil {
			s = good()
			mutate(s)
		}
		if _, err := FromState(s); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
