package summary

import (
	"fmt"
	"math"
	"sort"
)

// DefaultEpsilon is the rank-error budget used when a caller passes 0.
const DefaultEpsilon = 0.005

// defaultHint is the stream length assumed when a caller passes no size
// hint. Exceeding the hint degrades the guarantee gracefully (one extra
// 1/blockSize of error per extra doubling) rather than failing.
const defaultHint = 1 << 21

// Stream is an unbounded ε-approximate quantile sketch: values are pushed
// one at a time (optionally weighted), buffered in blocks, and folded into
// a binary counter of summaries — level l holds a summary of 2^l blocks
// that has been compressed at most l+1 times, so the total rank error stays
// ≤ maxLevels/blockSize ≤ ε while memory stays O(maxLevels·blockSize) =
// O(log(εn)/ε) regardless of stream length.
//
// Queries are served from a cached merged snapshot of all levels plus the
// current partial buffer, so interleaving Push and Query costs one merge
// per round at worst — the per-round pattern of the collection game.
type Stream struct {
	eps       float64
	blockSize int
	// The buffer holds raw pushes as parallel slices; bufW is nil until the
	// first non-unit weight arrives, which keeps the hot unweighted path on
	// sort.Float64s instead of an interface-based sort.
	bufV   []float64
	bufW   []float64
	levels []*Summary // levels[l] == nil when the slot is empty

	count    int     // observations pushed (unweighted count)
	sum      float64 // Σ value·weight of everything pushed/absorbed
	min, max float64

	cache *Summary // merged snapshot; invalidated by Push/Absorb

	// levelCache is the merged summary of the levels alone (no buffer). A
	// Push only dirties the buffer, so the level merge survives until the
	// next flush/carry — interleaved Push/Query re-merges the partial
	// buffer, not the whole counter. levelBuilds counts rebuilds (the
	// invalidate-once regression tests read it).
	levelCache  *Summary
	levelBuilds int

	// focus*: the adaptive-ε compression window (SetFocus). When
	// focusTighten > 1, compressions keep tighten× denser rank coverage
	// inside [focusLo, focusHi] — quantile queries near the window resolve
	// with ≈ ε/tighten error while memory grows by at most the extra grid
	// points. Focus is dynamic tuning, not serialized state: State()/
	// FromState round-trips ignore it.
	focusLo, focusHi float64
	focusTighten     int
}

// New returns a Stream with rank-error budget eps (DefaultEpsilon when 0)
// sized for about hint elements (defaultHint when ≤ 0).
func New(eps float64, hint int) (*Stream, error) {
	if eps == 0 {
		eps = DefaultEpsilon
	}
	if eps < 0 || eps >= 1 {
		return nil, fmt.Errorf("summary: epsilon %v outside (0, 1)", eps)
	}
	if hint <= 0 {
		hint = defaultHint
	}
	// Jointly solve for the level count and block size: a summary at level
	// l has been compressed at most l times (one per carry), so
	// blockSize ≥ (maxLevels+1)/eps keeps the total error strictly below
	// eps with one level of headroom for hint overshoot.
	blockSize := int(math.Ceil(2 / eps))
	for maxLevels := 1; (1<<uint(maxLevels))*blockSize < hint; maxLevels++ {
		blockSize = int(math.Ceil(float64(maxLevels+2)/eps)) + 1
	}
	return &Stream{
		eps:       eps,
		blockSize: blockSize,
		bufV:      make([]float64, 0, blockSize),
		min:       math.Inf(1),
		max:       math.Inf(-1),
	}, nil
}

// Epsilon returns the configured rank-error budget.
func (st *Stream) Epsilon() float64 { return st.eps }

// BlockSize returns the flush-buffer size the error budget resolved to.
func (st *Stream) BlockSize() int { return st.blockSize }

// SetFocus narrows the compression budget around the rank window
// [pct−width, pct+width] (clamped to [0,1]): every subsequent compression
// keeps tighten× denser rank coverage inside the window, so queries near
// pct — the collection game's trim threshold — resolve with ≈ ε/tighten
// error. tighten ≤ 1 clears the focus. Focus only ever adds grid points,
// so the global ε bound is unchanged.
func (st *Stream) SetFocus(pct, width float64, tighten int) {
	if tighten <= 1 {
		st.ClearFocus()
		return
	}
	lo, hi := pct-width, pct+width
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	st.focusLo, st.focusHi, st.focusTighten = lo, hi, tighten
}

// ClearFocus removes the adaptive-ε window set by SetFocus.
func (st *Stream) ClearFocus() {
	st.focusLo, st.focusHi, st.focusTighten = 0, 0, 0
}

// compress applies the stream's compression budget to s: the plain
// blockSize grid, or the focused grid when SetFocus is active.
func (st *Stream) compress(s *Summary) {
	if st.focusTighten > 1 {
		s.CompressFocused(st.blockSize, st.focusLo, st.focusHi, st.focusTighten)
		return
	}
	s.Compress(st.blockSize)
}

// Push absorbs one observation with weight 1.
func (st *Stream) Push(v float64) { st.PushWeighted(v, 1) }

// PushWeighted absorbs one observation with the given positive weight.
func (st *Stream) PushWeighted(v, w float64) {
	if w <= 0 || math.IsNaN(v) {
		return
	}
	st.cache = nil
	st.push1(v, w)
}

// push1 is PushWeighted after validation and cache invalidation — shared
// with the batch path, which invalidates once per call instead.
func (st *Stream) push1(v, w float64) {
	st.count++
	st.sum += v * w
	if v < st.min {
		st.min = v
	}
	if v > st.max {
		st.max = v
	}
	if w != 1 && st.bufW == nil {
		st.bufW = make([]float64, len(st.bufV), cap(st.bufV))
		for i := range st.bufW {
			st.bufW[i] = 1
		}
	}
	st.bufV = append(st.bufV, v)
	if st.bufW != nil {
		st.bufW = append(st.bufW, w)
	}
	if len(st.bufV) >= st.blockSize {
		st.flush()
	}
}

// flush converts the buffer into an exact block summary and carries it
// through the level counter, compressing once per occupied level passed.
func (st *Stream) flush() {
	if len(st.bufV) == 0 {
		return
	}
	if st.bufW == nil {
		sort.Float64s(st.bufV)
	} else {
		sort.Sort(&byValue{st.bufV, st.bufW})
	}
	s := FromSorted(st.bufV, st.bufW)
	st.bufV = st.bufV[:0]
	if st.bufW != nil {
		st.bufW = st.bufW[:0]
	}
	st.carry(s)
}

// carry propagates a summary up the binary counter. The levels change, so
// both the full snapshot cache and the level cache are invalidated here —
// the single chokepoint every flush/absorb funnels through.
func (st *Stream) carry(s *Summary) {
	st.cache = nil
	st.levelCache = nil
	for l := 0; ; l++ {
		if l == len(st.levels) {
			st.levels = append(st.levels, nil)
		}
		if st.levels[l] == nil {
			st.levels[l] = s
			return
		}
		s.Merge(st.levels[l])
		st.compress(s)
		st.levels[l] = nil
	}
}

// Absorb merges another summary into the stream — the scale-out primitive:
// per-shard summaries produced elsewhere are absorbed by a coordinator
// stream. The absorbed summary is carried through the levels like a block,
// so the coordinator's error stays ≤ max(ε_self, ε_other) + ε_self.
//
// A bare summary does not carry its observation count or value sum, so both
// are estimated (count from total weight — exact for unit-weight streams;
// sum via ApproxSum). Callers that know the true values should use
// AbsorbCounted (the wire report ships them alongside the summary).
func (st *Stream) Absorb(s *Summary) {
	if s == nil || s.Size() == 0 {
		return
	}
	st.AbsorbCounted(s, int(math.Round(s.TotalWeight())), s.ApproxSum())
}

// AbsorbCounted merges a summary whose exact observation count and value sum
// are known (shipped alongside it, as the cluster's wire reports do), so the
// stream's Count and Mean stay exact across shard hops.
func (st *Stream) AbsorbCounted(s *Summary, count int, sum float64) {
	if s == nil || s.Size() == 0 {
		return
	}
	st.cache = nil
	st.count += count
	st.sum += sum
	first, last := s.entries[0], s.entries[len(s.entries)-1]
	if first.Value < st.min {
		st.min = first.Value
	}
	if last.Value > st.max {
		st.max = last.Value
	}
	c := s.Clone()
	st.compress(c)
	st.carry(c)
}

// AbsorbStream absorbs a whole other stream (its current snapshot), carrying
// the exact count and sum over.
func (st *Stream) AbsorbStream(other *Stream) {
	if other == nil {
		return
	}
	st.AbsorbCounted(other.Snapshot(), other.count, other.sum)
	if other.count > 0 {
		if other.min < st.min {
			st.min = other.min
		}
		if other.max > st.max {
			st.max = other.max
		}
	}
}

// Snapshot returns the merged summary of everything pushed so far. The
// result is cached until the next Push/Absorb; callers must not mutate it
// (Clone first). The merge of the level counter is cached separately and
// survives pushes (only a flush/carry dirties it), so the steady
// Push/Query interleaving of the collection game re-merges the partial
// buffer against one pre-merged summary instead of re-walking every
// level. Merge is associative, so the regrouping leaves unit-weight
// snapshots bit-identical (integer rank arithmetic is exact in float64).
func (st *Stream) Snapshot() *Summary {
	if st.cache != nil {
		return st.cache
	}
	if st.levelCache == nil {
		st.levelBuilds++
		lc := &Summary{}
		for _, lv := range st.levels {
			if lv != nil {
				lc.Merge(lv)
			}
		}
		st.levelCache = lc
	}
	if len(st.bufV) == 0 {
		st.cache = st.levelCache
		return st.cache
	}
	vals := append([]float64(nil), st.bufV...)
	var merged *Summary
	if st.bufW == nil {
		sort.Float64s(vals)
		merged = FromSorted(vals, nil)
	} else {
		wts := append([]float64(nil), st.bufW...)
		sort.Sort(&byValue{vals, wts})
		merged = FromSorted(vals, wts)
	}
	merged.Merge(st.levelCache)
	st.cache = merged
	return merged
}

// Query returns the ε-approximate q-th quantile of the stream.
func (st *Stream) Query(q float64) float64 { return st.Snapshot().Query(q) }

// Rank returns the ε-approximate empirical CDF of the stream at v.
func (st *Stream) Rank(v float64) float64 { return st.Snapshot().Rank(v) }

// Median is Query(0.5).
func (st *Stream) Median() float64 { return st.Query(0.5) }

// Count returns the number of observations pushed.
func (st *Stream) Count() int { return st.count }

// Sum returns the Σ value·weight of everything pushed. Exact for pushed and
// AbsorbCounted/AbsorbStream input; estimated (ApproxSum) for bare Absorbs.
func (st *Stream) Sum() float64 { return st.sum }

// Mean returns the weighted mean of the stream (Sum/TotalWeight) — the
// downstream mean estimator that replaces buffering raw values. NaN when
// empty.
func (st *Stream) Mean() float64 {
	w := st.TotalWeight()
	if w == 0 {
		return math.NaN()
	}
	return st.sum / w
}

// TotalWeight returns the summarized total weight.
func (st *Stream) TotalWeight() float64 { return st.Snapshot().TotalWeight() }

// Min returns the exact minimum pushed value (+Inf when empty).
func (st *Stream) Min() float64 { return st.min }

// Max returns the exact maximum pushed value (−Inf when empty).
func (st *Stream) Max() float64 { return st.max }

// StreamState is the complete serializable state of a Stream: configuration,
// exact counters, the raw push buffer and the level counter. Restoring it
// with FromState yields a stream whose every subsequent observable —
// Snapshot, Query, Count, Sum, Min, Max — is bit-identical to the original's,
// including after further pushes and absorbs, which is what lets a
// checkpointed coordinator resume a game mid-flight without perturbing its
// kept-stream estimates (internal/fleet).
type StreamState struct {
	Epsilon   float64
	BlockSize int
	Count     int
	Sum       float64
	Min, Max  float64

	// BufV/BufW mirror the raw push buffer; BufW is nil for unit-weight
	// streams (the nil-ness is part of the state: it selects the hot
	// unweighted sort path).
	BufV []float64
	BufW []float64

	// Levels mirrors the binary counter; nil slots are empty levels and are
	// significant (they decide where the next carry lands).
	Levels []*Summary
}

// State deep-copies the stream's full state. The copy shares nothing with
// the live stream, so it can be serialized (or held) while the stream keeps
// absorbing.
func (st *Stream) State() *StreamState {
	s := &StreamState{
		Epsilon:   st.eps,
		BlockSize: st.blockSize,
		Count:     st.count,
		Sum:       st.sum,
		Min:       st.min,
		Max:       st.max,
	}
	if len(st.bufV) > 0 {
		s.BufV = append([]float64(nil), st.bufV...)
	}
	if st.bufW != nil {
		s.BufW = append([]float64(nil), st.bufW...)
	}
	for _, lv := range st.levels {
		if lv == nil {
			s.Levels = append(s.Levels, nil)
			continue
		}
		s.Levels = append(s.Levels, lv.Clone())
	}
	return s
}

// FromState rebuilds a Stream from a State() copy (or a decoded wire
// snapshot). The input is deep-copied; structural nonsense — a non-positive
// block size, a weight buffer out of step with the value buffer, a buffer at
// or past the flush point — is rejected rather than resumed.
func FromState(s *StreamState) (*Stream, error) {
	if s == nil {
		return nil, fmt.Errorf("summary: nil stream state")
	}
	if s.Epsilon <= 0 || s.Epsilon >= 1 {
		return nil, fmt.Errorf("summary: stream state epsilon %v outside (0, 1)", s.Epsilon)
	}
	if s.BlockSize <= 0 {
		return nil, fmt.Errorf("summary: stream state block size %d", s.BlockSize)
	}
	if len(s.BufV) >= s.BlockSize {
		return nil, fmt.Errorf("summary: stream state buffer %d at/past flush point %d", len(s.BufV), s.BlockSize)
	}
	if s.BufW != nil && len(s.BufW) != len(s.BufV) {
		return nil, fmt.Errorf("summary: stream state weight buffer %d for %d values", len(s.BufW), len(s.BufV))
	}
	if s.Count < 0 {
		return nil, fmt.Errorf("summary: stream state count %d", s.Count)
	}
	st := &Stream{
		eps:       s.Epsilon,
		blockSize: s.BlockSize,
		bufV:      make([]float64, len(s.BufV), s.BlockSize),
		count:     s.Count,
		sum:       s.Sum,
		min:       s.Min,
		max:       s.Max,
	}
	copy(st.bufV, s.BufV)
	if s.BufW != nil {
		st.bufW = make([]float64, len(s.BufW), s.BlockSize)
		copy(st.bufW, s.BufW)
	}
	for _, lv := range s.Levels {
		if lv == nil {
			st.levels = append(st.levels, nil)
			continue
		}
		st.levels = append(st.levels, lv.Clone())
	}
	return st, nil
}

// Reset empties the stream, keeping its configuration.
func (st *Stream) Reset() {
	st.bufV = st.bufV[:0]
	st.bufW = nil
	st.levels = st.levels[:0]
	st.count = 0
	st.sum = 0
	st.min = math.Inf(1)
	st.max = math.Inf(-1)
	st.cache = nil
	st.levelCache = nil
}

// byValue sorts a parallel (values, weights) pair by value.
type byValue struct {
	v []float64
	w []float64
}

func (s *byValue) Len() int           { return len(s.v) }
func (s *byValue) Less(i, j int) bool { return s.v[i] < s.v[j] }
func (s *byValue) Swap(i, j int) {
	s.v[i], s.v[j] = s.v[j], s.v[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}
