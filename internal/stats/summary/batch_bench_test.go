package summary

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/stats"
)

// The ingest trajectory (ISSUE 8 / ROADMAP item 2): one op = absorbing
// benchPoints observations into a fresh stream, so points/sec =
// benchPoints / (ns_op · 1e-9). scripts/ingest_bench.sh converts and
// gates the batch-vs-single ratio in CI.
const benchPoints = 100000

func benchData() []float64 {
	rng := stats.NewRand(99)
	xs := make([]float64, benchPoints)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

// BenchmarkStreamPush is the pre-batch baseline: one PushWeighted per point.
func BenchmarkStreamPush(b *testing.B) {
	xs := benchData()
	b.SetBytes(benchPoints * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := New(0, benchPoints)
		if err != nil {
			b.Fatal(err)
		}
		for _, x := range xs {
			st.Push(x)
		}
		if st.Count() != benchPoints {
			b.Fatal("count mismatch")
		}
	}
}

// BenchmarkStreamPushBatch is the buffered path: pooled chunk sort + dedup
// + one carry per chunk.
func BenchmarkStreamPushBatch(b *testing.B) {
	xs := benchData()
	b.SetBytes(benchPoints * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := New(0, benchPoints)
		if err != nil {
			b.Fatal(err)
		}
		st.PushBatch(xs)
		if st.Count() != benchPoints {
			b.Fatal("count mismatch")
		}
	}
}

// BenchmarkStreamPushParallel is the worker's per-core schedule: the batch
// split into GOMAXPROCS sub-shards, each batch-pushed into its own stream
// concurrently, snapshots merged in sub order.
func BenchmarkStreamPushParallel(b *testing.B) {
	xs := benchData()
	subs := runtime.GOMAXPROCS(0)
	b.SetBytes(benchPoints * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snaps := make([]*Summary, subs)
		counts := make([]int, subs)
		var wg sync.WaitGroup
		for c := 0; c < subs; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lo, hi := benchPoints*c/subs, benchPoints*(c+1)/subs
				st, err := New(0, hi-lo)
				if err != nil {
					panic(err)
				}
				st.PushBatch(xs[lo:hi])
				snaps[c], counts[c] = st.Snapshot(), st.Count()
			}(c)
		}
		wg.Wait()
		merged, total := &Summary{}, 0
		for c := range snaps {
			merged.Merge(snaps[c])
			total += counts[c]
		}
		if total != benchPoints {
			b.Fatal("count mismatch")
		}
	}
}
