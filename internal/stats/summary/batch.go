package summary

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
)

// Batch ingestion (DESIGN.md §12). PushBatch feeds the level counter in
// L2-cache-sized chunks instead of touching the stream per item. The
// unit-weight hot path is a fused pipeline over pooled scratch:
//
//  1. one scan filters NaNs, folds the Count/Sum accounting, converts each
//     value to its order-preserving uint64 key and builds all radix
//     histograms;
//  2. an LSD radix sort over the high key word (single-bucket passes
//     skipped, low-word ties finished by a per-run comparison sort) orders
//     the keys;
//  3. the block summary is built straight off the sorted keys — runs of
//     equal values stream through the same target-grid walk Compress uses,
//     so only the ≤ blockSize+1 survivors are ever materialized — and
//     carried as a single block.
//
// Relative to item-wise Push this replaces ~chunk/blockSize sorts, exact
// block builds and carry cascades with one of each, and the steady-state
// path allocates only the surviving entries per chunk.
//
// The batch path is governed by the same error accounting as Push: a chunk
// block enters the counter with one compression already applied (≤
// 1/blockSize added rank error) and pays the same one-compression-per-level
// toll on the way up, so the stream's ε budget — sized for maxLevels+2
// compressions — still covers it. Batch and item-wise ingestion are
// rank-equivalent within ε but not bit-identical (the chunk partition
// differs from the block partition), so paths that must reproduce each
// other bit for bit have to agree on which API they use.

// batchChunk is the direct-chunk size floor in values: 32768 float64s =
// 256 KiB, sized to stay resident in a per-core L2 while amortizing the
// carry cascade over many blocks. Chunks are max(blockSize, batchChunk).
const batchChunk = 1 << 15

// radixMin is the chunk size below which key sorting falls back to the
// stdlib: resetting the 48 KiB histogram array would dominate tiny chunks.
const radixMin = 512

const (
	radixBits    = 8
	radixBuckets = 1 << radixBits
	radixMask    = radixBuckets - 1
	// Only the high word is radix-sorted (4 passes); ties below — short,
	// rare runs for continuous data, whose neighbors usually differ within
	// the top 20 mantissa bits — are resolved by a comparison sort per run.
	// (3 passes over the top 24 bits measured slower: the longer cleanup
	// runs cost more than the saved scatter pass.)
	radixPasses = 4
	radixShift  = 32
)

// batchScratch is the pooled working set of one chunk flush: the filtered
// value/weight copies (weighted path), the radix key buffers (unit path),
// and the exact block entries. Everything is length-reset and
// capacity-retained between uses.
type batchScratch struct {
	vals    []float64
	wts     []float64
	keys    []uint64
	tmp     []uint64
	entries []Entry
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// PushBatch absorbs a slice of unit-weight observations. Equivalent to
// pushing each value in order (NaNs skipped; Count/Sum/Min/Max identical),
// with the snapshot cache invalidated once for the whole batch.
func (st *Stream) PushBatch(values []float64) {
	st.pushBatch(values, nil)
}

// PushBatchWeighted absorbs parallel value/weight slices (weights may be
// nil for all-unit weights; otherwise the lengths must match). Values with
// NaN or non-positive weight are skipped, as in PushWeighted.
func (st *Stream) PushBatchWeighted(values, weights []float64) error {
	if weights != nil && len(weights) != len(values) {
		return fmt.Errorf("summary: %d weights for %d values", len(weights), len(values))
	}
	st.pushBatch(values, weights)
	return nil
}

func (st *Stream) pushBatch(values, weights []float64) {
	if len(values) == 0 {
		return
	}
	st.cache = nil
	i, n := 0, len(values)
	for i < n {
		// With an empty buffer and at least a block of input left, flush a
		// chunk directly; otherwise feed the buffer item-wise — topping a
		// partial buffer up to its flush point, or parking a sub-block tail.
		if len(st.bufV) == 0 && n-i >= st.blockSize {
			i += st.flushChunk(values[i:], weightTail(weights, i))
			continue
		}
		v, w := values[i], 1.0
		if weights != nil {
			w = weights[i]
		}
		i++
		if w <= 0 || math.IsNaN(v) {
			continue
		}
		st.push1(v, w)
	}
}

// weightTail returns weights[i:], tolerating a nil slice.
func weightTail(weights []float64, i int) []float64 {
	if weights == nil {
		return nil
	}
	return weights[i:]
}

// flushChunk absorbs one direct chunk from the head of rem (with parallel
// weights, or nil for unit weights) and returns how many inputs it
// consumed. The chunk boundary is a pure function of (remaining length,
// blockSize), so identical push sequences chunk identically everywhere.
func (st *Stream) flushChunk(rem, wts []float64) int {
	m := st.blockSize
	if m < batchChunk {
		m = batchChunk
	}
	if m > len(rem) {
		m = len(rem)
	}
	if wts == nil {
		st.flushChunkUnit(rem[:m])
	} else {
		st.flushChunkWeighted(rem[:m], wts[:m])
	}
	return m
}

// flushChunkUnit is the fused unit-weight pipeline: filter + accounting +
// key conversion + histogramming in one scan, radix sort, then a block
// summary streamed off the sorted keys. Min/Max fall out of the sorted
// extremes.
func (st *Stream) flushChunkUnit(chunk []float64) {
	sc := batchPool.Get().(*batchScratch)
	if cap(sc.keys) < len(chunk) || cap(sc.tmp) < len(chunk) {
		sc.keys = make([]uint64, len(chunk))
		sc.tmp = make([]uint64, len(chunk))
	}
	// The scan loops index a pre-sized buffer and accumulate into locals so
	// the hot loop is call-free (an append could grow; a stream field write
	// forces a reload every iteration).
	keys := sc.keys[:len(chunk)]
	w := 0
	cnt, sm := st.count, st.sum
	var sorted []uint64
	if len(chunk) < radixMin {
		for _, v := range chunk {
			if math.IsNaN(v) {
				continue
			}
			cnt++
			sm += v
			keys[w] = f64key(v)
			w++
		}
		keys = keys[:w]
		slices.Sort(keys)
		sorted = keys
	} else {
		var counts [radixPasses][radixBuckets]int32
		for _, v := range chunk {
			if math.IsNaN(v) {
				continue
			}
			cnt++
			sm += v
			k := f64key(v)
			keys[w] = k
			w++
			counts[0][k>>32&radixMask]++
			counts[1][k>>40&radixMask]++
			counts[2][k>>48&radixMask]++
			counts[3][k>>56]++
		}
		keys = keys[:w]
		var spare []uint64
		sorted, spare = radixSortKeys(keys, sc.tmp[:w], &counts)
		sc.keys, sc.tmp = sorted[:cap(sorted)], spare[:cap(spare)]
	}
	st.count, st.sum = cnt, sm
	if n := len(sorted); n > 0 {
		if lo := keyf64(sorted[0]); lo < st.min {
			st.min = lo
		}
		if hi := keyf64(sorted[n-1]); hi > st.max {
			st.max = hi
		}
		st.carry(st.buildBlockKeys(sorted))
	}
	batchPool.Put(sc)
}

// flushChunkWeighted is the weighted chunk path: filtered copies, a
// comparison sort carrying the weights along, then an exact dedup into
// pooled entries compressed to the block budget.
func (st *Stream) flushChunkWeighted(chunk, wts []float64) {
	sc := batchPool.Get().(*batchScratch)
	vals, ws := sc.vals[:0], sc.wts[:0]
	for k, v := range chunk {
		w := wts[k]
		if w <= 0 || math.IsNaN(v) {
			continue
		}
		st.count++
		st.sum += v * w
		if v < st.min {
			st.min = v
		}
		if v > st.max {
			st.max = v
		}
		vals = append(vals, v)
		ws = append(ws, w)
	}
	if len(vals) > 0 {
		sort.Sort(&byValue{vals, ws})
		st.carry(st.buildBlock(vals, ws, sc))
	}
	sc.vals, sc.wts = vals, ws
	batchPool.Put(sc)
}

// buildBlock turns a sorted (value, weight) chunk into a compressed block
// summary: an exact FromSorted-equivalent dedup into pooled entry storage,
// one compression to the stream's block budget, then a compact copy — the
// level counter retains carried summaries, so pooled backing must not
// escape.
func (st *Stream) buildBlock(sorted, wts []float64, sc *batchScratch) *Summary {
	entries := sc.entries[:0]
	cum := 0.0
	for i, v := range sorted {
		w := 1.0
		if wts != nil {
			w = wts[i]
		}
		if n := len(entries); n > 0 && entries[n-1].Value == v {
			entries[n-1].Weight += w
			entries[n-1].MaxRank += w
			cum += w
			continue
		}
		entries = append(entries, Entry{Value: v, Weight: w, MinRank: cum, MaxRank: cum + w})
		cum += w
	}
	sc.entries = entries
	s := &Summary{entries: entries}
	st.compress(s)
	return &Summary{entries: append(make([]Entry, 0, len(s.entries)), s.entries...)}
}

// buildBlockKeys turns a sorted unit-weight key chunk into a compressed
// block summary without materializing the exact per-value entries: runs of
// equal values stream off the keys through the same target-grid walk as
// compressTargets, so only survivors are written. The result is identical
// to dedup-then-compress — run boundaries, rank arithmetic (exact integers
// in float64), grid targets and the nearest-midpoint/lastIdx selection all
// match — while touching O(blockSize) memory instead of O(chunk).
func (st *Stream) buildBlockKeys(keys []uint64) *Summary {
	n := len(keys)
	bs := st.blockSize
	if bs < 2 {
		bs = 2
	}
	// Upper bound on distinct values via key equality (the keys of −0.0 and
	// +0.0 differ but decode to equal values; at most one adjacent pair
	// collapses, which can only make the summary one entry smaller).
	runs := 1
	for i := 1; i < n; i++ {
		if keys[i] != keys[i-1] {
			runs++
		}
	}
	// Runs are tracked as (key, rank interval) and decoded to an Entry only
	// when they survive — the walk below discards most runs unseen. Run
	// boundaries are key boundaries, except the one distinct-key pair that
	// decodes to equal values: −0.0 then +0.0, folded explicitly.
	pos := 0
	nextRun := func() (keyRun, bool) {
		if pos >= n {
			return keyRun{}, false
		}
		k := keys[pos]
		start := pos
		pos++
		for pos < n && keys[pos] == k {
			pos++
		}
		if k == negZeroKey && pos < n && keys[pos] == posZeroKey {
			for pos < n && keys[pos] == posZeroKey {
				pos++
			}
		}
		return keyRun{k: k, start: start, end: pos}, true
	}
	if runs <= bs+1 {
		// Within the block budget: exact, no compression — mirrors the
		// n ≤ b+1 early return in Compress/CompressFocused.
		entries := make([]Entry, 0, runs)
		for {
			r, ok := nextRun()
			if !ok {
				break
			}
			entries = append(entries, r.entry())
		}
		return &Summary{entries: entries}
	}
	w := float64(n)
	var next func() (float64, bool)
	capHint := bs + 2
	if st.focusTighten > 1 && st.focusHi > st.focusLo {
		next = focusGridTargets(w, bs, st.focusLo, st.focusHi, st.focusTighten)
		capHint += int(float64(bs)*float64(st.focusTighten)*(st.focusHi-st.focusLo)) + 2
	} else {
		next = gridTargets(w, bs)
	}
	// Streaming mirror of compressTargets: prev/cur shadow entries i−1 and
	// i, the one-run lookahead la tells us when cur is the final run (the
	// walk never selects it; it is appended unconditionally at the end).
	// runs ≥ bs+3 here, so cur and la both exist.
	out := make([]Entry, 0, capHint)
	first, _ := nextRun()
	out = append(out, first.entry())
	prev := first
	cur, _ := nextRun()
	curIdx := 1
	la, laOK := nextRun()
	lastIdx := 0
	for {
		t, ok := next()
		if !ok {
			break
		}
		for laOK && cur.mid() < t {
			prev, cur, curIdx = cur, la, curIdx+1
			la, laOK = nextRun()
		}
		if !laOK {
			break // the cursor reached the final run
		}
		j, jIdx := cur, curIdx
		if t-prev.mid() <= cur.mid()-t {
			j, jIdx = prev, curIdx-1
		}
		if jIdx > lastIdx {
			out = append(out, j.entry())
			lastIdx = jIdx
		}
	}
	for laOK {
		cur = la
		la, laOK = nextRun()
	}
	return &Summary{entries: append(out, cur.entry())}
}

// keyRun is one maximal run of equal values in a sorted key chunk: the run's
// key and its half-open rank interval. Rank arithmetic stays on exact
// integers in float64, matching the exact dedup build bit for bit.
type keyRun struct {
	k          uint64
	start, end int
}

// mid matches Entry.midRank on the run's entry.
func (r keyRun) mid() float64 {
	return (float64(r.start) + float64(r.end)) / 2
}

func (r keyRun) entry() Entry {
	return Entry{Value: keyf64(r.k), Weight: float64(r.end - r.start), MinRank: float64(r.start), MaxRank: float64(r.end)}
}

const (
	negZeroKey = ^uint64(1 << 63) // f64key(-0.0)
	posZeroKey = uint64(1 << 63)  // f64key(+0.0)
)

// f64key maps a float64 onto a uint64 whose unsigned order matches float
// order: the sign bit is flipped for non-negatives, all bits for negatives.
// NaNs are filtered before keying; −0.0 keys below +0.0 (the two compare
// equal as floats, so the run scan folds them back together).
func f64key(v float64) uint64 {
	k := math.Float64bits(v)
	if k&(1<<63) != 0 {
		return ^k
	}
	return k | 1<<63
}

// keyf64 inverts f64key.
func keyf64(k uint64) float64 {
	if k&(1<<63) != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// radixSortKeys sorts keys ascending: an LSD radix sort over the high word
// (histograms pre-built by the caller's conversion scan; passes whose keys
// all share one digit are skipped, so narrow-range data pays only for the
// digits that vary), then a cleanup walk that comparison-sorts any run of
// equal high words on the full key. Continuous data almost never ties in
// the top 20 mantissa bits, so cleanup is a read-only scan; duplicate-heavy
// data ties with fully equal keys, which the all-equal check skips. Returns
// the sorted buffer and the spare (callers re-home both into the scratch).
func radixSortKeys(keys, tmp []uint64, counts *[radixPasses][radixBuckets]int32) (sorted, spare []uint64) {
	n := int32(len(keys))
	src, dst := keys, tmp
	for p, shift := 0, uint(radixShift); p < radixPasses; p, shift = p+1, shift+radixBits {
		c := &counts[p]
		if c[src[0]>>shift&radixMask] == n {
			continue // every key shares this digit
		}
		sum := int32(0)
		for b := range c {
			c[b], sum = sum, sum+c[b]
		}
		for _, k := range src {
			b := k >> shift & radixMask
			dst[c[b]] = k
			c[b]++
		}
		src, dst = dst, src
	}
	for i, nn := 0, len(src); i < nn; {
		hi := src[i] >> radixShift
		j := i + 1
		for j < nn && src[j]>>radixShift == hi {
			j++
		}
		if j > i+1 && !keysAllEqual(src[i:j]) {
			sortRun(src[i:j])
		}
		i = j
	}
	return src, dst
}

// sortRun orders one tie run on the full key: insertion sort for the short
// runs continuous data produces, the stdlib for anything longer.
func sortRun(ks []uint64) {
	if len(ks) > 24 {
		slices.Sort(ks)
		return
	}
	for i := 1; i < len(ks); i++ {
		k := ks[i]
		j := i - 1
		for j >= 0 && ks[j] > k {
			ks[j+1] = ks[j]
			j--
		}
		ks[j+1] = k
	}
}

func keysAllEqual(ks []uint64) bool {
	for _, k := range ks[1:] {
		if k != ks[0] {
			return false
		}
	}
	return true
}
