package stats

import (
	"math"
	"testing"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(1), NewRand(1)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should produce identical streams")
		}
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRand(3)
	xs := NormalSlice(rng, 100000, 2, 3)
	if m := Mean(xs); math.Abs(m-2) > 0.05 {
		t.Errorf("Normal mean = %v, want ≈2", m)
	}
	if s := StdDev(xs); math.Abs(s-3) > 0.05 {
		t.Errorf("Normal stddev = %v, want ≈3", s)
	}
}

func TestUniformSliceRange(t *testing.T) {
	rng := NewRand(4)
	xs := UniformSlice(rng, 10000, -2, 5)
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn < -2 || mx >= 5 {
		t.Errorf("Uniform out of range: [%v, %v]", mn, mx)
	}
	if m := Mean(xs); math.Abs(m-1.5) > 0.1 {
		t.Errorf("Uniform mean = %v, want ≈1.5", m)
	}
}

func TestLaplaceMoments(t *testing.T) {
	rng := NewRand(5)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Laplace(rng, 1, 2)
	}
	if m := Mean(xs); math.Abs(m-1) > 0.05 {
		t.Errorf("Laplace mean = %v, want ≈1", m)
	}
	// Variance of Laplace(mu, b) is 2b² = 8.
	if v := Variance(xs); math.Abs(v-8) > 0.4 {
		t.Errorf("Laplace variance = %v, want ≈8", v)
	}
}

func TestMixtureWeights(t *testing.T) {
	rng := NewRand(6)
	comps := []MixtureComponent{
		{Weight: 3, Mu: -10, Sigma: 0.1},
		{Weight: 1, Mu: 10, Sigma: 0.1},
	}
	xs := MixtureSlice(rng, 40000, comps)
	var left int
	for _, x := range xs {
		if x < 0 {
			left++
		}
	}
	frac := float64(left) / float64(len(xs))
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("mixture left fraction = %v, want ≈0.75", frac)
	}
}

func TestMixtureSingleComponent(t *testing.T) {
	rng := NewRand(8)
	comps := []MixtureComponent{{Weight: 1, Mu: 5, Sigma: 0.5}}
	x := Mixture(rng, comps)
	if x < 0 || x > 10 {
		t.Errorf("single-component mixture sample %v implausible", x)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	rng := NewRand(7)
	xs := []float64{1, 2, 3, 4, 5}
	sum := Sum(xs)
	Shuffle(rng, xs)
	if Sum(xs) != sum || len(xs) != 5 {
		t.Errorf("Shuffle altered contents: %v", xs)
	}
}

func TestSampleWithout(t *testing.T) {
	rng := NewRand(9)
	idx := SampleWithout(rng, 10, 5)
	if len(idx) != 5 {
		t.Fatalf("got %d indices, want 5", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 10 {
			t.Errorf("index %d out of range", i)
		}
		if seen[i] {
			t.Errorf("duplicate index %d", i)
		}
		seen[i] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("SampleWithout(n<k) should panic")
		}
	}()
	SampleWithout(rng, 2, 3)
}

func TestBernoulli(t *testing.T) {
	rng := NewRand(10)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", frac)
	}
	if Bernoulli(rng, 0) {
		t.Error("Bernoulli(0) fired")
	}
}
