package stats

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	// Pin the mapping: the derived seed is part of the wire-visible
	// reproducibility contract (DESIGN.md §7); silently changing the mix
	// would silently change every shard-local run.
	if got := DeriveSeed(1, 0, 1); got != DeriveSeed(1, 0, 1) || got == DeriveSeed(2, 0, 1) {
		t.Fatalf("unexpected derivation: %d", got)
	}
}

func TestDeriveSeedSeparatesCells(t *testing.T) {
	seen := make(map[int64][3]int)
	for _, master := range []int64{0, 1, 42, -7} {
		for shard := 0; shard < 16; shard++ {
			for round := 0; round <= 24; round++ {
				s := DeriveSeed(master, shard, round)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v -> %d",
						master, shard, round, prev, s)
				}
				seen[s] = [3]int{int(master), shard, round}
			}
		}
	}
}

func TestNewShardRandStreamsDecorrelated(t *testing.T) {
	// Neighbouring cells must not produce shifted copies of one stream.
	a := NewShardRand(1, 0, 1)
	b := NewShardRand(1, 1, 1)
	c := NewShardRand(1, 0, 2)
	equalAB, equalAC := 0, 0
	for i := 0; i < 64; i++ {
		va, vb, vc := a.Float64(), b.Float64(), c.Float64()
		if va == vb {
			equalAB++
		}
		if va == vc {
			equalAC++
		}
	}
	if equalAB > 0 || equalAC > 0 {
		t.Fatalf("derived streams overlap: %d/%d equal draws", equalAB, equalAC)
	}
}
