package stats

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	// Pin the mapping: the derived seed is part of the wire-visible
	// reproducibility contract (DESIGN.md §7); silently changing the mix
	// would silently change every shard-local run.
	if got := DeriveSeed(1, 0, 1); got != DeriveSeed(1, 0, 1) || got == DeriveSeed(2, 0, 1) {
		t.Fatalf("unexpected derivation: %d", got)
	}
}

func TestDeriveSeedSeparatesCells(t *testing.T) {
	seen := make(map[int64][3]int)
	for _, master := range []int64{0, 1, 42, -7} {
		for shard := 0; shard < 16; shard++ {
			for round := 0; round <= 24; round++ {
				s := DeriveSeed(master, shard, round)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v -> %d",
						master, shard, round, prev, s)
				}
				seen[s] = [3]int{int(master), shard, round}
			}
		}
	}
}

// The repartitioning property the fleet runtime rests on (DESIGN.md §8): a
// membership epoch of size m serves shard slots 0..m−1, so for every epoch
// size 1..8 the slot streams must be (a) stable — slot s's stream at round
// r depends only on (master, s, r), never on how many slots the epoch has,
// so a re-admitted worker resumes exactly the stream the slot always had —
// and (b) pairwise disjoint — no two (slot, round) cells share a seed or
// produce overlapping draw prefixes, so repartitioning over survivors never
// replays another slot's arrivals.
func TestDeriveSeedRepartitionStableAndDisjoint(t *testing.T) {
	const maxSlots, rounds, prefix = 8, 30, 8
	for _, master := range []int64{1, 99, 1 << 40} {
		// Stability across epoch sizes: record each slot stream once, then
		// verify every epoch size m sees the identical prefix streams for
		// its slots 0..m−1.
		type cell struct{ slot, round int }
		streams := make(map[cell][prefix]float64)
		for s := 0; s < maxSlots; s++ {
			for r := 1; r <= rounds; r++ {
				var draws [prefix]float64
				rng := NewShardRand(master, s, r)
				for i := range draws {
					draws[i] = rng.Float64()
				}
				streams[cell{s, r}] = draws
			}
		}
		for m := 1; m <= maxSlots; m++ {
			for s := 0; s < m; s++ {
				r := 1 + (s+m)%rounds
				var draws [prefix]float64
				rng := NewShardRand(master, s, r)
				for i := range draws {
					draws[i] = rng.Float64()
				}
				if draws != streams[cell{s, r}] {
					t.Fatalf("master %d epoch size %d: slot %d round %d stream not stable", master, m, s, r)
				}
			}
		}
		// Disjointness: distinct seeds and distinct draw prefixes across the
		// whole (slot, round) grid, including the reserved coordinator cell
		// (0, 0).
		seeds := make(map[int64]cell)
		prefixes := make(map[[prefix]float64]cell)
		check := func(c cell) {
			s := DeriveSeed(master, c.slot, c.round)
			if prev, dup := seeds[s]; dup {
				t.Fatalf("master %d: seed collision between %+v and %+v", master, prev, c)
			}
			seeds[s] = c
			var draws [prefix]float64
			rng := NewRand(s)
			for i := range draws {
				draws[i] = rng.Float64()
			}
			if prev, dup := prefixes[draws]; dup {
				t.Fatalf("master %d: stream prefix collision between %+v and %+v", master, prev, c)
			}
			prefixes[draws] = c
		}
		check(cell{0, 0})
		for s := 0; s < maxSlots; s++ {
			for r := 1; r <= rounds; r++ {
				check(cell{s, r})
			}
		}
	}
}

// The elastic-fleet extension of the repartition property (DESIGN.md §13):
// under an arbitrary grow/shrink schedule — the slot width changing round
// to round as slots are opened, lost, and re-admitted — every live slot
// still draws exactly the stream the (master, slot, round) cell always had,
// and no two cells touched anywhere in the schedule overlap. Growth only
// opens new streams and churn never moves an existing one, which is what
// lets a grown run match the wider flat reference from the grow round on.
func TestDeriveSeedGrowShrinkScheduleStableAndDisjoint(t *testing.T) {
	const prefix = 8
	// Slot widths per round: grow 4→6→8, shrink to 5 (losses), regrow to 8.
	schedule := []int{4, 4, 6, 6, 8, 5, 5, 8, 8, 8}
	for _, master := range []int64{7, 1 << 33} {
		type cell struct{ slot, round int }
		draw := func(c cell) [prefix]float64 {
			var draws [prefix]float64
			rng := NewShardRand(master, c.slot, c.round)
			for i := range draws {
				draws[i] = rng.Float64()
			}
			return draws
		}
		// Reference streams for the widest slot space, recorded up front.
		want := make(map[cell][prefix]float64)
		for r := 1; r <= len(schedule); r++ {
			for s := 0; s < 8; s++ {
				want[cell{s, r}] = draw(cell{s, r})
			}
		}
		seen := make(map[[prefix]float64]cell)
		for r := 1; r <= len(schedule); r++ {
			for s := 0; s < schedule[r-1]; s++ {
				c := cell{s, r}
				got := draw(c)
				if got != want[c] {
					t.Fatalf("master %d: slot %d round %d stream moved under the schedule", master, s, r)
				}
				if prev, dup := seen[got]; dup {
					t.Fatalf("master %d: stream collision between %+v and %+v", master, prev, c)
				}
				seen[got] = c
			}
		}
	}
}

func TestNewShardRandStreamsDecorrelated(t *testing.T) {
	// Neighbouring cells must not produce shifted copies of one stream.
	a := NewShardRand(1, 0, 1)
	b := NewShardRand(1, 1, 1)
	c := NewShardRand(1, 0, 2)
	equalAB, equalAC := 0, 0
	for i := 0; i < 64; i++ {
		va, vb, vc := a.Float64(), b.Float64(), c.Float64()
		if va == vb {
			equalAB++
		}
		if va == vc {
			equalAC++
		}
	}
	if equalAB > 0 || equalAC > 0 {
		t.Fatalf("derived streams overlap: %d/%d equal draws", equalAB, equalAC)
	}
}
