package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7 / MATLAB "prctile"
// convention, which the paper's experiments rely on for percentile
// placement). The input is not modified. Empty input yields NaN; q outside
// [0,1] is clamped.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for already-sorted input. It performs no
// allocation, which matters in the per-round hot path of the collection game.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	q = Clamp(q, 0, 1)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs.
func Percentile(xs []float64, p float64) float64 {
	return Quantile(xs, p/100)
}

// PercentileRank returns the fraction of elements in xs that are ≤ v, i.e.
// the empirical CDF of xs evaluated at v. It is the inverse operation of
// Quantile and is used to express injection/trim positions as percentiles.
func PercentileRank(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileRankSorted(sorted, v)
}

// PercentileRankSorted is PercentileRank for already-sorted input.
func PercentileRankSorted(sorted []float64, v float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	// Number of elements ≤ v.
	idx := sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(len(sorted))
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// TrimAbove returns the elements of xs that are ≤ threshold, preserving
// order. It is the primitive behind every collector strategy: the paper's
// distance-based sanitization removes any point with d_i > θ_d.
func TrimAbove(xs []float64, threshold float64) []float64 {
	kept := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x <= threshold {
			kept = append(kept, x)
		}
	}
	return kept
}

// TrimAtPercentile removes all elements strictly above the p-th percentile
// (0 ≤ p ≤ 100) of xs and returns the kept elements along with the threshold
// value used.
func TrimAtPercentile(xs []float64, p float64) (kept []float64, threshold float64) {
	threshold = Percentile(xs, p)
	return TrimAbove(xs, threshold), threshold
}
