package stats

import "math/rand"

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014): a
// bijective avalanche mix whose increments generate statistically
// independent 64-bit streams. It is the standard splitting primitive for
// deriving child RNG seeds from a master seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed derives the RNG seed of one (shard, round) cell of a run from
// its master seed — the seed-derivation contract of the shard-local data
// plane (DESIGN.md §7). Each coordinate is folded through an independent
// SplitMix64 mix, so streams for distinct shards and rounds are
// decorrelated. Each fold is a bijection of the accumulated state, so
// cells differing only in shard (or only in round) always get distinct
// seeds; across the joint (shard, round) space a collision requires two
// avalanche-mixed states to cancel exactly — possible in principle,
// ~2⁻⁶⁴ per pair in practice.
//
// Conventions: shards are numbered from 0 and game rounds from 1; the
// (shard 0, round 0) cell is reserved for the coordinator's own pre-game
// draws (the clean baseline batch). A run that derives every random draw
// through this function is a pure function of (master seed, shard count).
func DeriveSeed(master int64, shard, round int) int64 {
	z := splitmix64(uint64(master))
	z = splitmix64(z ^ (0xd6e8feb86659fd93 + uint64(uint32(shard))))
	z = splitmix64(z ^ (0xa5cb3b1cd8c2a5f5 + uint64(uint32(round))))
	return int64(z)
}

// NewShardRand returns the derived RNG stream for one (shard, round) cell.
func NewShardRand(master int64, shard, round int) *rand.Rand {
	return NewRand(DeriveSeed(master, shard, round))
}
