package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSum(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"mixed", []float64{1, -2, 3.5}, 2.5},
		{"zeros", []float64{0, 0, 0}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Sum(c.in); got != c.want {
				t.Errorf("Sum(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(empty) should be NaN")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance(empty) should be NaN")
	}
}

func TestVarianceConstantSlice(t *testing.T) {
	xs := []float64{7, 7, 7, 7}
	if got := Variance(xs); got != 0 {
		t.Errorf("Variance of constant slice = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 5 {
		t.Errorf("Max = %v, %v; want 5, nil", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(empty) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(empty) err = %v, want ErrEmpty", err)
	}
}

func TestMSEAndSSE(t *testing.T) {
	ys := []float64{1, 2, 3}
	yh := []float64{1, 1, 5}
	mse, err := MSE(ys, yh)
	if err != nil {
		t.Fatal(err)
	}
	if want := (0.0 + 1 + 4) / 3; math.Abs(mse-want) > 1e-12 {
		t.Errorf("MSE = %v, want %v", mse, want)
	}
	sse, err := SSE(ys, yh)
	if err != nil {
		t.Fatal(err)
	}
	if sse != 5 {
		t.Errorf("SSE = %v, want 5", sse)
	}
	if _, err := MSE(ys, yh[:2]); err == nil {
		t.Error("MSE length mismatch should error")
	}
	if _, err := MSE(nil, nil); err != ErrEmpty {
		t.Errorf("MSE(empty) err = %v, want ErrEmpty", err)
	}
	if _, err := SSE(ys, yh[:1]); err == nil {
		t.Error("SSE length mismatch should error")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestIsFiniteSlice(t *testing.T) {
	if !IsFiniteSlice([]float64{1, 2, 3}) {
		t.Error("finite slice misreported")
	}
	if IsFiniteSlice([]float64{1, math.NaN()}) {
		t.Error("NaN slice misreported")
	}
	if IsFiniteSlice([]float64{math.Inf(1)}) {
		t.Error("Inf slice misreported")
	}
	if !IsFiniteSlice(nil) {
		t.Error("empty slice should count as finite")
	}
}

// Property: variance is non-negative and mean lies within [min, max].
func TestMeanVarianceProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Constrain magnitude to avoid float overflow artifacts.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		v := Variance(xs)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		const slack = 1e-6
		return v >= -slack && m >= mn-slack && m <= mx+slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shifting all values by c shifts the mean by c and leaves the
// variance unchanged (up to float tolerance).
func TestShiftInvariance(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		tol := 1e-6 * (1 + math.Abs(shift)) * float64(len(xs))
		return math.Abs(Mean(shifted)-(Mean(xs)+shift)) < tol &&
			math.Abs(Variance(shifted)-Variance(xs)) < tol*100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
