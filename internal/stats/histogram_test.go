package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("0 bins should error")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty domain should error")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("inverted domain should error")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.5)  // bin 0
	h.Add(9.99) // bin 9
	h.Add(5)    // bin 5
	h.Add(-3)   // clamped to bin 0
	h.Add(42)   // clamped to bin 9
	if h.Counts[0] != 2 {
		t.Errorf("bin 0 = %v, want 2", h.Counts[0])
	}
	if h.Counts[9] != 2 {
		t.Errorf("bin 9 = %v, want 2", h.Counts[9])
	}
	if h.Counts[5] != 1 {
		t.Errorf("bin 5 = %v, want 1", h.Counts[5])
	}
	if h.Total() != 5 {
		t.Errorf("Total = %v, want 5", h.Total())
	}
}

func TestHistogramNaNGoesToBinZero(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	h.Add(math.NaN())
	if h.Counts[0] != 1 {
		t.Errorf("NaN should land in bin 0, got %v", h.Counts)
	}
}

func TestHistogramCenters(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	want := []float64{1, 3, 5, 7, 9}
	for i, w := range want {
		if got := h.Center(i); math.Abs(got-w) > 1e-12 {
			t.Errorf("Center(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestHistogramFrequenciesAndMean(t *testing.T) {
	h, _ := NewHistogram(0, 4, 4)
	h.Add(0.5)
	h.Add(0.5)
	h.Add(3.5)
	f := h.Frequencies()
	if math.Abs(f[0]-2.0/3) > 1e-12 || math.Abs(f[3]-1.0/3) > 1e-12 {
		t.Errorf("Frequencies = %v", f)
	}
	// Mean of centers: (0.5*2 + 3.5)/3 = 1.5
	if got := h.Mean(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Mean = %v, want 1.5", got)
	}
	empty, _ := NewHistogram(0, 1, 2)
	if !math.IsNaN(empty.Mean()) {
		t.Error("empty histogram Mean should be NaN")
	}
	ef := empty.Frequencies()
	for _, v := range ef {
		if v != 0 {
			t.Errorf("empty Frequencies = %v", ef)
		}
	}
}

func TestHistogramQuantileValue(t *testing.T) {
	h, _ := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := h.QuantileValue(q)
		if math.Abs(got-q*100) > 2 {
			t.Errorf("QuantileValue(%v) = %v, want ≈%v", q, got, q*100)
		}
	}
	empty, _ := NewHistogram(0, 1, 2)
	if !math.IsNaN(empty.QuantileValue(0.5)) {
		t.Error("empty QuantileValue should be NaN")
	}
}

func TestHistogramL1Distance(t *testing.T) {
	a, _ := NewHistogram(0, 1, 2)
	b, _ := NewHistogram(0, 1, 2)
	a.Add(0.25)
	b.Add(0.75)
	d, err := a.L1Distance(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-12 {
		t.Errorf("L1Distance = %v, want 2 (disjoint)", d)
	}
	c, _ := NewHistogram(0, 1, 3)
	if _, err := a.L1Distance(c); err == nil {
		t.Error("bin mismatch should error")
	}
}

func TestFromSamples(t *testing.T) {
	h, err := FromSamples([]float64{0.1, 0.9, 0.5}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Errorf("FromSamples counts = %v", h.Counts)
	}
	if _, err := FromSamples(nil, 1, 0, 2); err == nil {
		t.Error("bad domain should error")
	}
}

// Property: frequencies always sum to 1 for non-empty histograms, and the
// histogram mean lies within the domain.
func TestHistogramInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		h, err := NewHistogram(-100, 100, 32)
		if err != nil {
			return false
		}
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			h.Add(x)
			n++
		}
		if n == 0 {
			return true
		}
		sum := Sum(h.Frequencies())
		m := h.Mean()
		return math.Abs(sum-1) < 1e-9 && m >= -100 && m <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
