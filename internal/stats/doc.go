// Package stats provides the numeric substrate for the interactive-trimming
// reproduction: descriptive statistics, quantiles and percentile ranks,
// histograms, error metrics, vector distances and seeded random
// distributions.
//
// The Go ecosystem has no blessed statistics library comparable to MATLAB's
// toolboxes, so every primitive the paper's evaluation needs is implemented
// here from scratch on top of the standard library. All randomized helpers
// take an explicit *rand.Rand so experiments are reproducible round for
// round.
package stats
