package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile is a streaming quantile estimator implementing the P² algorithm
// of Jain & Chlamtac (CACM 1985). It maintains five markers and estimates a
// single quantile in O(1) space, which lets the data collector track the
// trimming percentile over an unbounded stream without buffering rounds.
//
// It is an ablation alternative to exact sorting (see DESIGN.md §5): exact
// percentiles cost O(n log n) per round while P² is O(1) amortized per
// observation at the price of a small bias that the tests bound. Unlike the
// mergeable summaries of internal/stats/summary (the system default), a P²
// instance tracks a single fixed quantile and cannot be merged across
// shards.
type P2Quantile struct {
	q     float64    // target quantile in (0,1)
	n     int        // observations seen
	pos   [5]float64 // actual marker positions (1-based, as in the paper)
	want  [5]float64 // desired marker positions
	incr  [5]float64 // desired position increments per observation
	h     [5]float64 // marker heights (estimates)
	ready bool       // true once 5 observations have been absorbed
	init  []float64  // buffer for the first 5 observations
}

// NewP2Quantile returns a streaming estimator for the q-th quantile,
// 0 < q < 1.
func NewP2Quantile(q float64) (*P2Quantile, error) {
	if !(q > 0 && q < 1) {
		return nil, fmt.Errorf("stats: P2 quantile %v outside (0,1)", q)
	}
	return &P2Quantile{q: q, init: make([]float64, 0, 5)}, nil
}

// Add absorbs one observation.
func (p *P2Quantile) Add(x float64) {
	p.n++
	if !p.ready {
		p.init = append(p.init, x)
		if len(p.init) == 5 {
			sort.Float64s(p.init)
			for i := 0; i < 5; i++ {
				p.h[i] = p.init[i]
				p.pos[i] = float64(i + 1)
			}
			q := p.q
			p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
			p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
			p.ready = true
		}
		return
	}

	// Find the cell k containing x and update extreme heights.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x < p.h[1]:
		k = 0
	case x < p.h[2]:
		k = 1
	case x < p.h[3]:
		k = 2
	case x <= p.h[4]:
		k = 3
	default:
		p.h[4] = x
		k = 3
	}

	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.incr[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			hNew := p.parabolic(i, sign)
			if p.h[i-1] < hNew && hNew < p.h[i+1] {
				p.h[i] = hNew
			} else {
				p.h[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic prediction for marker i moved by d.
func (p *P2Quantile) parabolic(i int, d float64) float64 {
	return p.h[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback linear prediction for marker i moved by d.
func (p *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.h[i] + d*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate. Before five observations it
// falls back to an exact computation on the buffered values; with no
// observations it returns NaN.
func (p *P2Quantile) Value() float64 {
	if p.ready {
		return p.h[2]
	}
	if len(p.init) == 0 {
		return math.NaN()
	}
	tmp := append([]float64(nil), p.init...)
	sort.Float64s(tmp)
	return QuantileSorted(tmp, p.q)
}

// Count returns the number of observations absorbed.
func (p *P2Quantile) Count() int { return p.n }
