package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by reductions that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs. Sum of an empty slice is 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for empty input so
// that downstream aggregation surfaces the error instead of silently using 0.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, matching
// the paper's SSE-style error accounting). Empty input yields NaN.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// MSE returns the mean squared error between observed ys and predicted yhat.
// The slices must have equal, non-zero length.
func MSE(ys, yhat []float64) (float64, error) {
	if len(ys) == 0 {
		return 0, ErrEmpty
	}
	if len(ys) != len(yhat) {
		return 0, errors.New("stats: MSE length mismatch")
	}
	var s float64
	for i := range ys {
		d := ys[i] - yhat[i]
		s += d * d
	}
	return s / float64(len(ys)), nil
}

// SSE returns the sum of squared errors between observed ys and predicted
// yhat, matching the paper's SSE = Σ (y_i − ŷ_i)².
func SSE(ys, yhat []float64) (float64, error) {
	if len(ys) != len(yhat) {
		return 0, errors.New("stats: SSE length mismatch")
	}
	var s float64
	for i := range ys {
		d := ys[i] - yhat[i]
		s += d * d
	}
	return s, nil
}

// AbsError returns |a−b|.
func AbsError(a, b float64) float64 {
	return math.Abs(a - b)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// IsFiniteSlice reports whether every element of xs is finite (no NaN/Inf).
func IsFiniteSlice(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
