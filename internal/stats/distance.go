package stats

import (
	"fmt"
	"math"
)

// SquaredEuclidean returns ‖a−b‖² for equal-length vectors. It panics on
// length mismatch because mismatched dimensionality is a programming error,
// not a data condition: every caller draws both vectors from one dataset.
func SquaredEuclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Euclidean returns ‖a−b‖.
func Euclidean(a, b []float64) float64 {
	return math.Sqrt(SquaredEuclidean(a, b))
}

// Manhattan returns the L1 distance Σ|a_i − b_i|.
func Manhattan(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Dot returns the inner product a·b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm ‖a‖.
func Norm(a []float64) float64 {
	var s float64
	for _, x := range a {
		s += x * x
	}
	return math.Sqrt(s)
}

// Scale multiplies every element of a by c in place and returns a.
func Scale(a []float64, c float64) []float64 {
	for i := range a {
		a[i] *= c
	}
	return a
}

// AddInPlace adds b into a element-wise and returns a.
func AddInPlace(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: dimension mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// MeanVector returns the element-wise mean of rows, each of equal length.
func MeanVector(rows [][]float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	dim := len(rows[0])
	m := make([]float64, dim)
	for _, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("stats: ragged rows: %d vs %d", len(r), dim)
		}
		for i, v := range r {
			m[i] += v
		}
	}
	for i := range m {
		m[i] /= float64(len(rows))
	}
	return m, nil
}
