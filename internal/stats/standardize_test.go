package stats

import (
	"math"
	"testing"
)

func TestStandardizer(t *testing.T) {
	rows := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	s, err := FitStandardizer(rows)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Transform(rows)
	// Each column should have mean 0 and unit variance after transform.
	for j := 0; j < 2; j++ {
		col := []float64{out[0][j], out[1][j], out[2][j]}
		if m := Mean(col); math.Abs(m) > 1e-12 {
			t.Errorf("col %d mean = %v", j, m)
		}
		if v := Variance(col); math.Abs(v-1) > 1e-12 {
			t.Errorf("col %d variance = %v", j, v)
		}
	}
}

func TestStandardizerConstantColumn(t *testing.T) {
	rows := [][]float64{{5, 1}, {5, 2}}
	s, err := FitStandardizer(rows)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Transform(rows)
	if out[0][0] != 0 || out[1][0] != 0 {
		t.Errorf("constant column should map to 0, got %v %v", out[0][0], out[1][0])
	}
	if !IsFiniteSlice(out[0]) || !IsFiniteSlice(out[1]) {
		t.Error("transform produced non-finite values")
	}
}

func TestStandardizerErrors(t *testing.T) {
	if _, err := FitStandardizer(nil); err != ErrEmpty {
		t.Errorf("FitStandardizer(nil) err = %v", err)
	}
	if _, err := FitStandardizer([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestStandardizerAppliesToNewRows(t *testing.T) {
	rows := [][]float64{{0}, {10}}
	s, _ := FitStandardizer(rows)
	out := s.Transform([][]float64{{5}})
	if math.Abs(out[0][0]) > 1e-12 {
		t.Errorf("midpoint should standardize to 0, got %v", out[0][0])
	}
}
