package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20}
	if got := Quantile(xs, 0.5); got != 15 {
		t.Errorf("Quantile(0.5) = %v, want 15", got)
	}
	if got := Quantile(xs, 0.25); got != 12.5 {
		t.Errorf("Quantile(0.25) = %v, want 12.5", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) should be NaN")
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("Quantile(single) = %v, want 7", got)
	}
	// Out-of-range q is clamped.
	xs := []float64{1, 2, 3}
	if got := Quantile(xs, -1); got != 1 {
		t.Errorf("Quantile(q<0) = %v, want 1", got)
	}
	if got := Quantile(xs, 2); got != 3 {
		t.Errorf("Quantile(q>1) = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("Percentile(50) = %v, want 3", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("Percentile(100) = %v, want 5", got)
	}
}

func TestPercentileRank(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		v, want float64
	}{
		{0, 0}, {1, 0.2}, {3, 0.6}, {5, 1}, {10, 1}, {2.5, 0.4},
	}
	for _, c := range cases {
		if got := PercentileRank(xs, c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PercentileRank(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if !math.IsNaN(PercentileRank(nil, 1)) {
		t.Error("PercentileRank(empty) should be NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median = %v, want 2.5", got)
	}
}

func TestTrimAbove(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	kept := TrimAbove(xs, 5)
	want := []float64{5, 1, 3}
	if len(kept) != len(want) {
		t.Fatalf("TrimAbove kept %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Errorf("TrimAbove[%d] = %v, want %v", i, kept[i], want[i])
		}
	}
	if got := TrimAbove(nil, 5); len(got) != 0 {
		t.Errorf("TrimAbove(empty) = %v", got)
	}
}

func TestTrimAtPercentile(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	kept, th := TrimAtPercentile(xs, 90)
	if math.Abs(th-89.1) > 1e-9 {
		t.Errorf("threshold = %v, want 89.1", th)
	}
	if len(kept) != 90 {
		t.Errorf("kept %d elements, want 90", len(kept))
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestQuantileMonotoneBounded(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := finite(raw)
		if len(xs) == 0 {
			return true
		}
		q1, q2 = Clamp(math.Abs(q1)-math.Floor(math.Abs(q1)), 0, 1), Clamp(math.Abs(q2)-math.Floor(math.Abs(q2)), 0, 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return v1 <= v2 && v1 >= mn && v2 <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: trimming is idempotent — trimming twice at the same threshold
// equals trimming once.
func TestTrimIdempotent(t *testing.T) {
	f := func(raw []float64, th float64) bool {
		if math.IsNaN(th) {
			return true
		}
		xs := finite(raw)
		once := TrimAbove(xs, th)
		twice := TrimAbove(once, th)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PercentileRank is the inverse of Quantile in the sense that
// Quantile(xs, PercentileRank(xs, v)) ≤ v for v in range.
func TestRankQuantileGalois(t *testing.T) {
	f := func(raw []float64) bool {
		xs := finite(raw)
		if len(xs) < 2 {
			return true
		}
		sort.Float64s(xs)
		for _, v := range xs {
			r := PercentileRankSorted(xs, v)
			qv := QuantileSorted(xs, r)
			if qv > v+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func finite(raw []float64) []float64 {
	xs := make([]float64, 0, len(raw))
	for _, x := range raw {
		if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
			xs = append(xs, x)
		}
	}
	return xs
}
