package stats

import (
	"fmt"
	"math"
)

// Histogram is an equal-width histogram over a fixed domain [Lo, Hi]. It is
// the backbone of the LDP frequency-oracle pipeline (internal/ldp) and of
// quality evaluation in the collection game: poison-mass estimates are
// computed from per-round histograms.
type Histogram struct {
	Lo, Hi float64
	Counts []float64 // may hold fractional (estimated) counts
	total  float64
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi].
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs ≥1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram domain [%v,%v] is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, bins)}, nil
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// BinOf returns the bin index for x, clamping out-of-domain values to the
// boundary bins (poison values may exceed the honest domain on purpose).
func (h *Histogram) BinOf(x float64) int {
	if math.IsNaN(x) {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	i := int((x - h.Lo) / w)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Center returns the center value of bin i.
func (h *Histogram) Center(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Add increments the bin containing x by weight 1.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// AddWeighted increments the bin containing x by w.
func (h *Histogram) AddWeighted(x, w float64) {
	h.Counts[h.BinOf(x)] += w
	h.total += w
}

// Total returns the summed weight.
func (h *Histogram) Total() float64 { return h.total }

// Frequencies returns the normalized bin frequencies (summing to 1). An
// empty histogram yields all zeros.
func (h *Histogram) Frequencies() []float64 {
	f := make([]float64, len(h.Counts))
	if h.total == 0 {
		return f
	}
	for i, c := range h.Counts {
		f[i] = c / h.total
	}
	return f
}

// Mean returns the histogram-approximated mean using bin centers.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	var s float64
	for i, c := range h.Counts {
		s += h.Center(i) * c
	}
	return s / h.total
}

// QuantileValue returns the value at the q-th quantile of the histogram
// using linear interpolation within the containing bin.
func (h *Histogram) QuantileValue(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	q = Clamp(q, 0, 1)
	target := q * h.total
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	var cum float64
	for i, c := range h.Counts {
		if cum+c >= target {
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / c
			}
			return h.Lo + (float64(i)+frac)*w
		}
		cum += c
	}
	return h.Hi
}

// L1Distance returns the total-variation-style L1 distance between the
// normalized frequencies of h and other. The histograms must have the same
// bin count.
func (h *Histogram) L1Distance(other *Histogram) (float64, error) {
	if len(h.Counts) != len(other.Counts) {
		return 0, fmt.Errorf("stats: histogram bin mismatch %d vs %d", len(h.Counts), len(other.Counts))
	}
	a, b := h.Frequencies(), other.Frequencies()
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d, nil
}

// FromSamples builds a histogram over [lo,hi] with bins bins from xs.
func FromSamples(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	for _, x := range xs {
		h.Add(x)
	}
	return h, nil
}
