package stats

import (
	"math"
	"math/rand"
)

// NewRand returns a seeded *rand.Rand. Every randomized component in the
// repository threads one of these explicitly so that experiments are
// reproducible and repetitions are independent (seed = base + repetition).
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Normal draws one sample from N(mu, sigma²).
func Normal(rng *rand.Rand, mu, sigma float64) float64 {
	return mu + sigma*rng.NormFloat64()
}

// NormalSlice draws n samples from N(mu, sigma²).
func NormalSlice(rng *rand.Rand, n int, mu, sigma float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Normal(rng, mu, sigma)
	}
	return xs
}

// UniformSlice draws n samples from U[lo, hi).
func UniformSlice(rng *rand.Rand, n int, lo, hi float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*rng.Float64()
	}
	return xs
}

// Laplace draws one sample from the Laplace distribution with location mu
// and scale b, the noise primitive of ε-differential privacy.
func Laplace(rng *rand.Rand, mu, b float64) float64 {
	u := rng.Float64() - 0.5
	return mu - b*sign(u)*math.Log(1-2*math.Abs(u))
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// MixtureComponent is one Gaussian component of a mixture distribution.
type MixtureComponent struct {
	Weight float64
	Mu     float64
	Sigma  float64
}

// Mixture draws one sample from a weighted Gaussian mixture. Weights need
// not be normalized; they are treated proportionally.
func Mixture(rng *rand.Rand, comps []MixtureComponent) float64 {
	var total float64
	for _, c := range comps {
		total += c.Weight
	}
	u := rng.Float64() * total
	var cum float64
	for _, c := range comps {
		cum += c.Weight
		if u <= cum {
			return Normal(rng, c.Mu, c.Sigma)
		}
	}
	last := comps[len(comps)-1]
	return Normal(rng, last.Mu, last.Sigma)
}

// MixtureSlice draws n samples from the mixture.
func MixtureSlice(rng *rand.Rand, n int, comps []MixtureComponent) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Mixture(rng, comps)
	}
	return xs
}

// Shuffle permutes xs in place using rng.
func Shuffle(rng *rand.Rand, xs []float64) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SampleWithout returns k indices sampled without replacement from [0, n).
// It panics if k > n.
func SampleWithout(rng *rand.Rand, n, k int) []int {
	if k > n {
		panic("stats: sample larger than population")
	}
	perm := rng.Perm(n)
	return perm[:k]
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}
