package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEuclideanDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := SquaredEuclidean(a, b); got != 25 {
		t.Errorf("SquaredEuclidean = %v, want 25", got)
	}
	if got := Euclidean(a, b); got != 5 {
		t.Errorf("Euclidean = %v, want 5", got)
	}
	if got := Manhattan(a, b); got != 7 {
		t.Errorf("Manhattan = %v, want 7", got)
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"SquaredEuclidean": func() { SquaredEuclidean([]float64{1}, []float64{1, 2}) },
		"Manhattan":        func() { Manhattan([]float64{1}, []float64{1, 2}) },
		"Dot":              func() { Dot([]float64{1}, []float64{1, 2}) },
		"AddInPlace":       func() { AddInPlace([]float64{1}, []float64{1, 2}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic on dimension mismatch", name)
				}
			}()
			f()
		})
	}
}

func TestDotNormScale(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	v := Scale([]float64{1, 2}, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Errorf("Scale = %v", v)
	}
}

func TestAddInPlace(t *testing.T) {
	a := []float64{1, 2}
	AddInPlace(a, []float64{10, 20})
	if a[0] != 11 || a[1] != 22 {
		t.Errorf("AddInPlace = %v", a)
	}
}

func TestMeanVector(t *testing.T) {
	m, err := MeanVector([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("MeanVector = %v", m)
	}
	if _, err := MeanVector(nil); err != ErrEmpty {
		t.Errorf("MeanVector(empty) err = %v", err)
	}
	if _, err := MeanVector([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows should error")
	}
}

// Property: distance axioms — non-negativity, identity, symmetry, and the
// triangle inequality for Euclidean distance.
func TestEuclideanMetricAxioms(t *testing.T) {
	gen := func(raw []float64) []float64 {
		out := make([]float64, 4)
		for i := 0; i < 4 && i < len(raw); i++ {
			x := raw[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				x = 0
			}
			out[i] = x
		}
		return out
	}
	f := func(ra, rb, rc []float64) bool {
		a, b, c := gen(ra), gen(rb), gen(rc)
		dab, dba := Euclidean(a, b), Euclidean(b, a)
		dac, dbc := Euclidean(a, c), Euclidean(b, c)
		const tol = 1e-9
		if dab < 0 || math.Abs(dab-dba) > tol {
			return false
		}
		if Euclidean(a, a) != 0 {
			return false
		}
		return dac <= dab+dbc+tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
