package stats

import (
	"fmt"
	"math"
)

// Standardizer performs per-feature z-score normalization, fit on one
// dataset and applied to others (e.g. fit on training rows, applied to
// poisoned rows before classification).
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer learns per-column mean and standard deviation. Columns
// with zero variance get Std 1 so transformation is a pure shift.
func FitStandardizer(rows [][]float64) (*Standardizer, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	dim := len(rows[0])
	s := &Standardizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("stats: ragged rows: %d vs %d", len(r), dim)
		}
		for j, v := range r {
			s.Mean[j] += v
		}
	}
	n := float64(len(rows))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = s.Std[j] / n
		if s.Std[j] > 0 {
			s.Std[j] = math.Sqrt(s.Std[j])
		} else {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Transform returns standardized copies of rows.
func (s *Standardizer) Transform(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		tr := make([]float64, len(r))
		for j, v := range r {
			tr[j] = (v - s.Mean[j]) / s.Std[j]
		}
		out[i] = tr
	}
	return out
}
