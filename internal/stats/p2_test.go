package stats

import (
	"math"
	"testing"
)

func TestP2RejectsBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewP2Quantile(q); err == nil {
			t.Errorf("NewP2Quantile(%v) should error", q)
		}
	}
}

func TestP2EmptyIsNaN(t *testing.T) {
	p, _ := NewP2Quantile(0.5)
	if !math.IsNaN(p.Value()) {
		t.Error("empty P2 should report NaN")
	}
	if p.Count() != 0 {
		t.Errorf("Count = %d, want 0", p.Count())
	}
}

func TestP2SmallInputExact(t *testing.T) {
	p, _ := NewP2Quantile(0.5)
	for _, x := range []float64{3, 1, 2} {
		p.Add(x)
	}
	if got := p.Value(); got != 2 {
		t.Errorf("P2 median of {1,2,3} = %v, want 2", got)
	}
}

func TestP2ConvergesOnUniform(t *testing.T) {
	for _, q := range []float64{0.1, 0.5, 0.9, 0.97} {
		p, err := NewP2Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		rng := NewRand(42)
		n := 50000
		for i := 0; i < n; i++ {
			p.Add(rng.Float64())
		}
		if got := p.Value(); math.Abs(got-q) > 0.01 {
			t.Errorf("P2 q=%v estimate = %v, want within 0.01", q, got)
		}
		if p.Count() != n {
			t.Errorf("Count = %d, want %d", p.Count(), n)
		}
	}
}

func TestP2ConvergesOnNormal(t *testing.T) {
	p, _ := NewP2Quantile(0.9)
	rng := NewRand(7)
	for i := 0; i < 50000; i++ {
		p.Add(Normal(rng, 0, 1))
	}
	// 90th percentile of N(0,1) is ≈ 1.2816.
	if got := p.Value(); math.Abs(got-1.2816) > 0.05 {
		t.Errorf("P2 q=0.9 on N(0,1) = %v, want ≈1.2816", got)
	}
}

func TestP2MonotoneStreamStaysInRange(t *testing.T) {
	p, _ := NewP2Quantile(0.5)
	for i := 0; i < 1000; i++ {
		p.Add(float64(i))
	}
	v := p.Value()
	if v < 0 || v > 999 {
		t.Errorf("P2 estimate %v escaped data range [0,999]", v)
	}
	if math.Abs(v-499.5) > 25 {
		t.Errorf("P2 median of 0..999 = %v, want ≈499.5", v)
	}
}

func TestP2VersusExactAgreement(t *testing.T) {
	rng := NewRand(99)
	xs := NormalSlice(rng, 20000, 5, 2)
	p, _ := NewP2Quantile(0.9)
	for _, x := range xs {
		p.Add(x)
	}
	exact := Quantile(xs, 0.9)
	if math.Abs(p.Value()-exact) > 0.1 {
		t.Errorf("P2 = %v, exact = %v; divergence too large", p.Value(), exact)
	}
}
