package repro_test

import (
	"io"
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/collect"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/game"
	"repro/internal/lagrangian"
	"repro/internal/ldp"
	"repro/internal/stats"
	"repro/internal/stats/summary"
	"repro/internal/trim"
)

// Each benchmark regenerates one of the paper's tables or figures at
// benchmark scale (see EXPERIMENTS.md for paper-scale instructions and the
// paper-vs-measured comparison). Run with:
//
//	go test -bench=. -benchmem
//
// Table/figure benches report ns/op for a full experiment regeneration;
// ablation benches at the bottom compare design alternatives called out in
// DESIGN.md §5.

func benchScale() experiments.Scale {
	sc := experiments.Quick
	sc.Repetitions = 1
	sc.Rounds = 5
	sc.Batch = 150
	return sc
}

func BenchmarkTableI(b *testing.B) {
	p := game.UltimatumPayoffs{PBar: 100, TBar: 50, P: 3, T: 1}
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(p)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableII(1, false)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

func BenchmarkTableIII(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIII(sc)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIV(0.9)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

func BenchmarkFig4(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(sc, 2)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

func BenchmarkFig5(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(sc, 2)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

func BenchmarkFig6(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(sc)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

func BenchmarkFig7(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(sc)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

func BenchmarkFig8(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(sc)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

func BenchmarkFig9(b *testing.B) {
	sc := benchScale()
	sc.Batch = 500
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(sc, []float64{0.2}, []float64{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkThresholdResolution is the headline comparison for the
// streaming-quantile refactor: per-round threshold resolution over a
// received stream arriving in 100k-value batches, exact copy-and-sort
// (the seed behavior — the pool is re-sorted from scratch every round)
// against the incremental ε-approximate summary (the new default — each
// round pushes its batch and queries in O(1/ε)).
//
// Run with: go test -bench=ThresholdResolution -benchmem
func BenchmarkThresholdResolution(b *testing.B) {
	const (
		batch  = 100000
		rounds = 20 // the paper's game horizon (§VI uses 20-25 rounds)
	)
	data := stats.NormalSlice(stats.NewRand(1), rounds*batch, 0, 1)

	b.Run("ExactSort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool := make([]float64, 0, rounds*batch)
			for r := 0; r < rounds; r++ {
				pool = append(pool, data[r*batch:(r+1)*batch]...)
				if v := stats.Quantile(pool, 0.9); math.IsNaN(v) {
					b.Fatal("NaN threshold")
				}
			}
		}
	})
	b.Run("Summary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := summary.New(0, rounds*batch)
			if err != nil {
				b.Fatal(err)
			}
			for r := 0; r < rounds; r++ {
				for _, v := range data[r*batch : (r+1)*batch] {
					st.Push(v)
				}
				if v := st.Query(0.9); math.IsNaN(v) {
					b.Fatal("NaN threshold")
				}
			}
		}
	})
}

// BenchmarkThresholdSingleBatch isolates one round at batch 100k: one
// exact quantile (copy + sort) against one summary build + query. The
// cumulative benchmark above is the game's real access pattern; this one
// bounds the worst case for the summary (no amortization across rounds).
func BenchmarkThresholdSingleBatch(b *testing.B) {
	const batch = 100000
	data := stats.NormalSlice(stats.NewRand(1), batch, 0, 1)
	b.Run("ExactSort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.Quantile(data, 0.9)
		}
	})
	b.Run("Summary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := summary.New(0, batch)
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range data {
				st.Push(v)
			}
			st.Query(0.9)
		}
	})
}

// BenchmarkPercentileExact vs BenchmarkPercentileP2: exact sort-based
// percentile tracking against the O(1)-space streaming P² estimator.
func BenchmarkPercentileExact(b *testing.B) {
	rng := stats.NewRand(1)
	xs := stats.NormalSlice(rng, 100000, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Quantile(xs, 0.97)
	}
}

func BenchmarkPercentileP2(b *testing.B) {
	rng := stats.NewRand(1)
	xs := stats.NormalSlice(rng, 100000, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := stats.NewP2Quantile(0.97)
		if err != nil {
			b.Fatal(err)
		}
		for _, x := range xs {
			p.Add(x)
		}
		_ = p.Value()
	}
}

// BenchmarkLDPDuchi vs BenchmarkLDPPiecewise: mechanism throughput for the
// Fig 9 pipeline.
func BenchmarkLDPDuchi(b *testing.B) {
	mech, err := ldp.NewDuchi(2)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mech.Perturb(rng, 0.3)
	}
}

func BenchmarkLDPPiecewise(b *testing.B) {
	mech, err := ldp.NewPiecewise(2)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mech.Perturb(rng, 0.3)
	}
}

// BenchmarkEMFilter: cost of one EM fit at Fig 9's bin resolution.
func BenchmarkEMFilter(b *testing.B) {
	mech, err := ldp.NewPiecewise(2)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRand(1)
	reports := make([]float64, 20000)
	for i := range reports {
		reports[i] = mech.Perturb(rng, stats.Clamp(stats.Normal(rng, 0, 0.3), -1, 1))
	}
	filter, err := ldp.NewEMFilter(mech, 32, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := filter.Fit(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEulerLagrange: free-system integration (Theorem 1 check, A1).
func BenchmarkEulerLagrange(b *testing.B) {
	sys, err := lagrangian.NewFreeSystem(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := lagrangian.Integrate(sys.Acceleration(),
			[]float64{0, 0}, []float64{1, -1}, 0, 100, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOscillator: coupled-oscillator integration (Theorem 4 check, A2).
func BenchmarkOscillator(b *testing.B) {
	sys, err := lagrangian.NewElasticSystem(1, 2, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := lagrangian.Integrate(sys.Acceleration(),
			[]float64{1, 0}, []float64{0, 0}, 0, 100, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem3: closed-form compliance condition vs explicit
// discounted summation (A3).
func BenchmarkTheorem3(b *testing.B) {
	rp := game.RepeatedParams{GC: 2, GA: 4, D: 0.9, P: 0.3}
	for i := 0; i < b.N; i++ {
		if _, err := rp.MaxDelta(); err != nil {
			b.Fatal(err)
		}
		rp.SimulateComply(0.5, 200)
		rp.SimulateDefect(200)
	}
}

// BenchmarkCollectionRound: one round of the scalar collection game — the
// per-round hot path of the online defense.
func BenchmarkCollectionRound(b *testing.B) {
	ref := stats.NormalSlice(stats.NewRand(1), 5000, 0, 1)
	honest, err := collect.PoolSampler(ref)
	if err != nil {
		b.Fatal(err)
	}
	static, err := trim.NewStatic("s", 0.9)
	if err != nil {
		b.Fatal(err)
	}
	adv, err := attack.NewPoint("p", 0.99)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := collect.Run(collect.Config{
			Rounds: 1, Batch: 1000, AttackRatio: 0.2,
			Reference: ref, Honest: honest,
			Collector: static, Adversary: adv,
			Rng: stats.NewRand(int64(i)),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrimSemantics: value-domain (§III-C) vs batch-fraction (Fig 3)
// threshold resolution — the two readings of the paper's trimming rule.
func BenchmarkTrimSemantics(b *testing.B) {
	ref := stats.NormalSlice(stats.NewRand(1), 5000, 0, 1)
	honest, err := collect.PoolSampler(ref)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, onBatch bool) {
		for i := 0; i < b.N; i++ {
			static, err := trim.NewStatic("s", 0.9)
			if err != nil {
				b.Fatal(err)
			}
			adv, err := attack.NewPoint("p", 0.99)
			if err != nil {
				b.Fatal(err)
			}
			_, err = collect.Run(collect.Config{
				Rounds: 10, Batch: 500, AttackRatio: 0.2,
				Reference: ref, Honest: honest,
				Collector: static, Adversary: adv,
				TrimOnBatch: onBatch,
				Rng:         stats.NewRand(int64(i)),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("ValueDomain", func(b *testing.B) { run(b, false) })
	b.Run("BatchFraction", func(b *testing.B) { run(b, true) })
}

// BenchmarkTriggerVariants: the §V future-work study — rigid Titfortat vs
// Tit-for-two-tats vs Generous Tit-for-tat vs Elastic.
func BenchmarkTriggerVariants(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Variants(sc)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkElasticVsTitfortatGame: trigger-rigidity ablation — full games
// under a defecting adversary.
func BenchmarkElasticVsTitfortatGame(b *testing.B) {
	ctl := dataset.Control(stats.NewRand(1))
	distances, err := ctl.Distances()
	if err != nil {
		b.Fatal(err)
	}
	honest, err := collect.PoolSampler(distances)
	if err != nil {
		b.Fatal(err)
	}
	run := func(col trim.Strategy, seed int64) {
		adv, err := attack.NewMixedP(0.5)
		if err != nil {
			b.Fatal(err)
		}
		_, err = collect.Run(collect.Config{
			Rounds: 20, Batch: 500, AttackRatio: 0.2,
			Reference: distances, Honest: honest,
			Collector: col, Adversary: adv,
			Quality: collect.EvasionQuality(0.2),
			Rng:     stats.NewRand(seed),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("Titfortat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tft, err := trim.NewTitfortat(0.91, 0.87, 0.55)
			if err != nil {
				b.Fatal(err)
			}
			run(tft, int64(i))
		}
	})
	b.Run("Elastic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ela, err := trim.NewElastic(0.9, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			run(ela, int64(i))
		}
	})
}
