// Quickstart: defend a poisoned data stream with the Elastic strategy in
// ~40 lines. An adversary injects 20% poison; the collector plays the
// coupled Elastic dynamics; the board shows both parties converging to the
// cooperative equilibrium.
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/collect"
	"repro/internal/stats"
	"repro/internal/trim"
)

func main() {
	rng := stats.NewRand(42)

	// A clean reference stream: N(0, 1) values.
	reference := stats.NormalSlice(rng, 10000, 0, 1)
	honest, err := collect.PoolSampler(reference)
	if err != nil {
		log.Fatal(err)
	}

	// Collector and adversary both play the Elastic dynamics (k = 0.5)
	// around the base threshold Tth = 0.9.
	collector, err := trim.NewElastic(0.9, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	adversary, err := attack.NewElastic(0.9, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	res, err := collect.Run(collect.Config{
		Rounds:      15,
		Batch:       1000,
		AttackRatio: 0.2,
		Reference:   reference,
		Honest:      honest,
		Collector:   collector,
		Adversary:   adversary,
		Rng:         rng,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  trim%    inject%  poisonKept  honestTrimmed")
	for _, rec := range res.Board.Records {
		fmt.Printf("%5d  %.4f   %.4f   %6d      %6d\n",
			rec.Round, rec.ThresholdPct, rec.MeanInjectionPct,
			rec.PoisonKept, rec.HonestTrimmed)
	}
	tStar, aStar, err := trim.EquilibriumThresholds(0.9, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalytic equilibrium: trim %.4f, inject %.4f\n", tStar, aStar)
	fmt.Printf("poison retained overall: %.2f%%, honest lost: %.2f%%\n",
		100*res.Board.PoisonRetention(), 100*res.Board.HonestLoss())
}
