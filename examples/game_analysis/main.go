// game_analysis: the paper's analytical results, computed. Prints the
// Table I ultimatum game and its equilibrium, the Theorem 3 compliance
// region for the Tit-for-tat strategy under non-deterministic utility, and
// the Theorem 4 oscillation of the Elastic interaction — both the
// continuous Euler-Lagrange dynamics and the discrete §VI-A percentile
// updates, side by side.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/game"
	"repro/internal/lagrangian"
)

func main() {
	// --- Table I: the one-shot trap. ---
	tbl, err := experiments.TableI(game.UltimatumPayoffs{PBar: 100, TBar: 50, P: 3, T: 1})
	if err != nil {
		log.Fatal(err)
	}
	tbl.Print(os.Stdout)

	// --- Theorem 3: how much utility the collector must concede. ---
	fmt.Println("\nTheorem 3: compliance bound δ* = (d − d·p)/(1 − d·p)·g_ac")
	fmt.Printf("%-6s %-6s %-10s %-12s %-12s\n", "d", "p", "maxDelta", "g_comply", "g_defect")
	for _, p := range []float64{0, 0.3, 0.7, 1} {
		rp := game.RepeatedParams{GC: 2, GA: 4, D: 0.9, P: p}
		maxD, err := rp.MaxDelta()
		if err != nil {
			log.Fatal(err)
		}
		delta := maxD * 0.9 // concede 90% of the admissible compromise
		fmt.Printf("%-6.2f %-6.2f %-10.4f %-12.4f %-12.4f\n",
			rp.D, p, maxD, rp.GainComply(delta), rp.GainDefect())
	}
	fmt.Println("(g_comply > g_defect inside the bound; at p=1 no compromise works)")

	// --- Theorem 4: the Elastic interaction oscillates. ---
	sys, err := lagrangian.NewElasticSystem(1, 2, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 4: coupled oscillator, ω = %.4f, period = %.2f rounds\n",
		sys.Omega(), sys.Period())
	states, err := lagrangian.Integrate(sys.Acceleration(),
		[]float64{1, 0}, []float64{0, 0}, 0, 2*sys.Period(), 2000)
	if err != nil {
		log.Fatal(err)
	}
	rel := lagrangian.RelativeUtility(states)
	period, err := lagrangian.EstimatePeriod(rel, 2*sys.Period()/2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured period from the integrated trajectory: %.2f rounds\n", period)

	// ASCII sketch of |u_a − u_c| over two periods.
	fmt.Println("\nrelative utility u_a − u_c (two periods):")
	plotASCII(rel, 60, 12)

	// --- The discrete §VI-A dynamics show the same damped interaction. ---
	fmt.Println("\ndiscrete §VI-A Elastic updates (k=0.5): trim/inject percentiles per round")
	traj, err := experiments.ElasticTrajectory(0.9, 0.5, 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range traj {
		fmt.Printf("round %2d: T=%.4f A=%.4f gap=%+.4f\n", pt.Round, pt.T, pt.A, pt.T-pt.A)
	}
}

// plotASCII renders a signal as a crude terminal plot.
func plotASCII(sig []float64, cols, rows int) {
	if len(sig) == 0 {
		return
	}
	mn, mx := sig[0], sig[0]
	for _, v := range sig {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx == mn {
		mx = mn + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for c := 0; c < cols; c++ {
		v := sig[c*(len(sig)-1)/(cols-1)]
		r := int((mx - v) / (mx - mn) * float64(rows-1))
		grid[r][c] = '*'
	}
	for _, row := range grid {
		fmt.Printf("|%s|\n", row)
	}
}
