// kmeans_defense: the Fig 4 scenario end to end on the Control dataset —
// six defense schemes against a colluding adversary, scored by how far the
// poisoned clustering's centroids drift from the clean ground truth.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/collect"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ml/kmeans"
	"repro/internal/stats"
)

func main() {
	const (
		tth         = 0.9
		attackRatio = 0.3
		rounds      = 20
		batch       = 300
	)

	ctl := dataset.Control(stats.NewRand(7))
	clean, err := kmeans.Fit(stats.NewRand(8), ctl.X, kmeans.Config{K: ctl.Clusters, Restarts: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Control: %d series, %d classes — clean SSE %.4g\n\n",
		ctl.Len(), ctl.Clusters, clean.SSE)
	fmt.Printf("%-16s %-12s %-12s %-14s\n", "scheme", "SSE/row", "centroidDist", "poisonKept%")

	for _, name := range experiments.AllSchemes {
		scheme, err := experiments.NewScheme(name, tth, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		out, err := collect.RunRows(collect.RowConfig{
			Rounds:      rounds,
			Batch:       batch,
			AttackRatio: attackRatio,
			Data:        ctl,
			Collector:   scheme.Collector,
			Adversary:   scheme.Adversary,
			PoisonLabel: -1,
			Rng:         stats.NewRand(9),
		})
		if err != nil {
			log.Fatal(err)
		}
		fit, err := kmeans.Fit(stats.NewRand(10), out.Kept.X, kmeans.Config{K: ctl.Clusters, Restarts: 2})
		if err != nil {
			log.Fatal(err)
		}
		dist, err := kmeans.CentroidDistance(fit.Centroids, clean.Centroids)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %-12.4g %-12.4g %-14.2f\n",
			name, fit.SSE/float64(out.Kept.Len()), dist,
			100*out.Board.PoisonRetention())
	}
	fmt.Println("\nExpected shape: Titfortat removes the equilibrium poison outright")
	fmt.Println("(near-zero retention); the Elastic schemes tolerate mild poison by")
	fmt.Println("design in exchange for sustainable cooperation; Ostrich and the")
	fmt.Println("tracked static baseline retain the attack in full.")

	// The distributed shape of the same pipeline (DESIGN.md §14): over a
	// cluster the kept rows never accumulate on the coordinator — each
	// worker holds its own rowstore pool and Consume streams the pages
	// into the model fit at game end, leaf by leaf, so the coordinator's
	// memory stays flat no matter how much the game collects.
	sch, err := experiments.NewScheme(experiments.Baseline09, tth, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	var streamed [][]float64
	cres, err := collect.RunClusterRows(collect.RowClusterConfig{
		RowConfig: collect.RowConfig{
			Rounds: rounds, Batch: batch, AttackRatio: attackRatio,
			Data: ctl, Collector: sch.Collector, Adversary: sch.Adversary,
			PoisonLabel: -1,
		},
		Transport:  cluster.NewLoopback(4),
		Gen:        &collect.ShardGen{MasterSeed: 11},
		LateCenter: true,
		Pipeline:   true,
		Consume: func(leaf int, rows [][]float64, labels []int) error {
			for _, r := range rows {
				streamed = append(streamed, append([]float64(nil), r...))
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fit, err := kmeans.Fit(stats.NewRand(10), streamed, kmeans.Config{K: ctl.Clusters, Restarts: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclustered %d rows streamed from 4 worker-held pools (manifest %v,\n", len(streamed), cres.PoolRows)
	fmt.Printf("pipelined rounds): SSE/row %.4g — no coordinator-resident row pool.\n",
		fit.SSE/float64(len(streamed)))
}
