// kmeans_defense: the Fig 4 scenario end to end on the Control dataset —
// six defense schemes against a colluding adversary, scored by how far the
// poisoned clustering's centroids drift from the clean ground truth.
package main

import (
	"fmt"
	"log"

	"repro/internal/collect"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ml/kmeans"
	"repro/internal/stats"
)

func main() {
	const (
		tth         = 0.9
		attackRatio = 0.3
		rounds      = 20
		batch       = 300
	)

	ctl := dataset.Control(stats.NewRand(7))
	clean, err := kmeans.Fit(stats.NewRand(8), ctl.X, kmeans.Config{K: ctl.Clusters, Restarts: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Control: %d series, %d classes — clean SSE %.4g\n\n",
		ctl.Len(), ctl.Clusters, clean.SSE)
	fmt.Printf("%-16s %-12s %-12s %-14s\n", "scheme", "SSE/row", "centroidDist", "poisonKept%")

	for _, name := range experiments.AllSchemes {
		scheme, err := experiments.NewScheme(name, tth, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		out, err := collect.RunRows(collect.RowConfig{
			Rounds:      rounds,
			Batch:       batch,
			AttackRatio: attackRatio,
			Data:        ctl,
			Collector:   scheme.Collector,
			Adversary:   scheme.Adversary,
			PoisonLabel: -1,
			Rng:         stats.NewRand(9),
		})
		if err != nil {
			log.Fatal(err)
		}
		fit, err := kmeans.Fit(stats.NewRand(10), out.Kept.X, kmeans.Config{K: ctl.Clusters, Restarts: 2})
		if err != nil {
			log.Fatal(err)
		}
		dist, err := kmeans.CentroidDistance(fit.Centroids, clean.Centroids)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %-12.4g %-12.4g %-14.2f\n",
			name, fit.SSE/float64(out.Kept.Len()), dist,
			100*out.Board.PoisonRetention())
	}
	fmt.Println("\nExpected shape: Titfortat removes the equilibrium poison outright")
	fmt.Println("(near-zero retention); the Elastic schemes tolerate mild poison by")
	fmt.Println("design in exchange for sustainable cooperation; Ostrich and the")
	fmt.Println("tracked static baseline retain the attack in full.")
}
