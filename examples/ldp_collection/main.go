// ldp_collection: the Fig 9 scenario — privacy-preserving mean estimation
// on taxi pick-up times under the input-manipulation attack, comparing
// interactive trimming against the EMF filtering baseline across privacy
// budgets.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/attack"
	"repro/internal/collect"
	"repro/internal/dataset"
	"repro/internal/ldp"
	"repro/internal/stats"
	"repro/internal/trim"
)

func main() {
	const (
		attackRatio = 0.25
		rounds      = 10
		batch       = 2000
	)

	taxi := dataset.TaxiN(stats.NewRand(11), 100000)
	inputs, err := taxi.Column(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Taxi sample: %d pick-up times normalized to [-1,1], true mean %.4f\n\n",
		len(inputs), stats.Mean(inputs))
	fmt.Printf("%-6s %-14s %-14s %-14s\n", "eps", "Elastic0.5", "Titfortat", "EMF")

	for _, eps := range []float64{1, 2, 3, 4, 5} {
		mech, err := ldp.NewPiecewise(eps)
		if err != nil {
			log.Fatal(err)
		}

		elastic := runScheme(mech, inputs, attackRatio, rounds, batch, func() (trim.Strategy, error) {
			return trim.NewElastic(0.95, 0.5)
		})
		tft := runScheme(mech, inputs, attackRatio, rounds, batch, func() (trim.Strategy, error) {
			return trim.NewTitfortat(0.96, 0.92, 0.5)
		})

		// EMF baseline: no trimming, EM filtering over all reports.
		adv, err := attack.NewPoint("P999", 0.999)
		if err != nil {
			log.Fatal(err)
		}
		out, err := collect.RunLDP(collect.LDPConfig{
			Rounds: rounds, Batch: batch, AttackRatio: attackRatio,
			Inputs: inputs, Mechanism: mech,
			Collector: trim.Ostrich{}, Adversary: adv,
			Rng: stats.NewRand(12),
		})
		if err != nil {
			log.Fatal(err)
		}
		filter, err := ldp.NewEMFilter(mech, 32, 64)
		if err != nil {
			log.Fatal(err)
		}
		est, err := filter.MeanEstimate(out.AllReports)
		if err != nil {
			log.Fatal(err)
		}
		emfErr := math.Abs(est - out.TrueMean)

		fmt.Printf("%-6.1f %-14.5f %-14.5f %-14.5f\n", eps, elastic, tft, emfErr)
	}
	fmt.Println("\nExpected shape: the EMF cannot remove channel-consistent poison")
	fmt.Println("(input manipulation), so trimming wins across the ε range; at")
	fmt.Println("small ε all schemes pay more overhead from perturbation noise.")
}

// runScheme plays one LDP collection game and returns |estimate − truth|.
func runScheme(mech ldp.Mechanism, inputs []float64, ratio float64,
	rounds, batch int, mk func() (trim.Strategy, error)) float64 {

	collector, err := mk()
	if err != nil {
		log.Fatal(err)
	}
	adv, err := attack.NewPoint("P999", 0.999)
	if err != nil {
		log.Fatal(err)
	}
	out, err := collect.RunLDP(collect.LDPConfig{
		Rounds: rounds, Batch: batch, AttackRatio: ratio,
		Inputs: inputs, Mechanism: mech,
		Collector: collector, Adversary: adv,
		Rng: stats.NewRand(13),
	})
	if err != nil {
		log.Fatal(err)
	}
	return math.Abs(out.MeanEstimate - out.TrueMean)
}
