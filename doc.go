// Package repro is a from-scratch Go reproduction of "Interactive Trimming
// against Evasive Online Data Manipulation Attacks: A Game-Theoretic
// Approach" (Fu, Ye, Du, Hu — ICDE 2024, arXiv:2403.10313).
//
// The library lives under internal/:
//
//   - internal/trim, internal/attack, internal/collect — the interactive
//     trimming game (the paper's contribution),
//   - internal/game, internal/lagrangian — the game-theoretic and
//     least-action analytical models,
//   - internal/stats, internal/dataset, internal/ml/…, internal/ldp —
//     the substrates the evaluation needs,
//   - internal/experiments — one harness per paper table/figure.
//
// Runnable entry points are cmd/trimlab, cmd/datagen and the programs under
// examples/. The benchmark suite in bench_test.go regenerates every table
// and figure at benchmark scale.
package repro
