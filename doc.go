// Package repro is a from-scratch Go reproduction of "Interactive Trimming
// against Evasive Online Data Manipulation Attacks: A Game-Theoretic
// Approach" (Fu, Ye, Du, Hu — ICDE 2024, arXiv:2403.10313).
//
// The library lives under internal/:
//
//   - internal/trim, internal/attack, internal/collect — the interactive
//     trimming game (the paper's contribution), including the sharded
//     scale-out collector collect.RunSharded,
//   - internal/game, internal/lagrangian — the game-theoretic and
//     least-action analytical models,
//   - internal/stats, internal/dataset, internal/ml/…, internal/ldp —
//     the substrates the evaluation needs; internal/stats/summary holds
//     the mergeable ε-approximate quantile summaries that every per-round
//     threshold, injection position and quality rank resolves against by
//     default (set ExactQuantiles in the collect configs for the legacy
//     copy-and-sort path; see DESIGN.md §5),
//   - internal/experiments — one harness per paper table/figure, plus the
//     sharded-collection scaling study.
//
// Runnable entry points are cmd/trimlab, cmd/datagen and the programs under
// examples/. The benchmark suite in bench_test.go regenerates every table
// and figure at benchmark scale and carries the exact-vs-summary threshold
// resolution ablations.
package repro
