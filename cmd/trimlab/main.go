// Command trimlab runs any of the paper's experiments from the command
// line and prints the same rows/series the paper reports.
//
// Usage:
//
//	trimlab -experiment fig4 [-scale quick|bench|paper] [-points N] [-seed S]
//
// Experiments: table1, table2, table3, table4, fig4, fig5, fig6, fig7,
// fig8, fig9, variants, blackbox, sharded, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/game"
)

func main() {
	var (
		exp    = flag.String("experiment", "all", "experiment to run: table1..table4, fig4..fig9, variants, all")
		scale  = flag.String("scale", "quick", "effort: quick, bench, or paper")
		points = flag.Int("points", 3, "attack-ratio points per interval (fig4/fig5)")
		seed   = flag.Int64("seed", 1, "base RNG seed")
	)
	flag.Parse()

	sc, err := scaleFor(*scale)
	if err != nil {
		fatal(err)
	}
	sc.Seed = *seed

	runners := map[string]func() error{
		"table1": func() error {
			res, err := experiments.TableI(game.UltimatumPayoffs{PBar: 100, TBar: 50, P: 3, T: 1})
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"table2": func() error {
			res, err := experiments.TableII(sc.Seed, *scale == "paper")
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"table3": func() error {
			res, err := experiments.TableIII(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"table4": func() error {
			res, err := experiments.TableIV(0.9)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig4": func() error {
			res, err := experiments.Fig4(sc, *points)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig5": func() error {
			res, err := experiments.Fig5(sc, *points)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig6": func() error {
			res, err := experiments.Fig6(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig7": func() error {
			res, err := experiments.Fig7(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig8": func() error {
			res, err := experiments.Fig8(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig9": func() error {
			ratios, epsilons := fig9Grids(*scale)
			res, err := experiments.Fig9(sc, ratios, epsilons)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"variants": func() error {
			res, err := experiments.Variants(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"blackbox": func() error {
			res, err := experiments.BlackBox(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"sharded": func() error {
			res, err := experiments.Sharded(sc, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
	}

	order := []string{"table1", "table2", "table3", "table4",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "variants", "blackbox", "sharded"}

	if *exp == "all" {
		for _, name := range order {
			if err := timed(name, runners[name]); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want one of %v or all)", *exp, order))
	}
	if err := timed(*exp, run); err != nil {
		fatal(err)
	}
}

func scaleFor(name string) (experiments.Scale, error) {
	switch name {
	case "quick":
		return experiments.Quick, nil
	case "bench":
		return experiments.Bench, nil
	case "paper":
		return experiments.Paper, nil
	}
	return experiments.Scale{}, fmt.Errorf("unknown scale %q (want quick, bench, or paper)", name)
}

// fig9Grids reduces the Fig 9 sweep outside paper scale: the full 9×9 grid
// with repetitions is the heaviest experiment in the suite.
func fig9Grids(scale string) (ratios, epsilons []float64) {
	if scale == "paper" {
		return nil, nil // package defaults: the full paper grids
	}
	return []float64{0.05, 0.2, 0.45}, []float64{1, 2, 3, 4, 5}
}

func timed(name string, run func() error) error {
	start := time.Now()
	fmt.Printf("=== %s ===\n", name)
	if err := run(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("--- %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trimlab:", err)
	os.Exit(1)
}
