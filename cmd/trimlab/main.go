// Command trimlab runs any of the paper's experiments from the command
// line and prints the same rows/series the paper reports, and hosts the
// distributed collector's processes.
//
// Usage:
//
//	trimlab -experiment fig4 [-scale quick|bench|paper] [-points N] [-seed S]
//	trimlab worker -listen :7101 [-seed S] [-rejoin] [-spill-dir D]
//	trimlab aggregator -listen :7201 -children host1:7101,host2:7101 [-rejoin] [-compress B] [-obs-addr :9301]
//	trimlab coordinator -workers host1:7101,host2:7101 [-seed S] [-local] [-pipeline] [-rounds N] [-batch N]
//	    [-subshards C] [-focus-tighten T] [-focus-width W]
//	    [-heartbeat D] [-hb-timeout D] [-rejoin] [-checkpoint-dir DIR] [-checkpoint-every K] [-resume]
//
// Experiments: table1, table2, table3, table4, fig4, fig5, fig6, fig7,
// fig8, fig9, variants, blackbox, sharded, distributed, fleet, pipeline,
// all.
//
// -pipeline (requires -local) turns on the overlapped round schedule
// (DESIGN.md §9): round r's classify broadcast carries round r+1's
// generator specs, so a steady-state round costs one RTT instead of two.
// The board is unchanged — the -local verification against the
// single-process reference still demands record-for-record equality.
//
// -subshards C (requires -local) splits each worker's generation into C
// per-core sub-shards drawn and summarized in parallel goroutines and
// merged locally, so a worker saturates its cores instead of one
// (DESIGN.md §12). The board equals the flat (workers · C)-shard reference,
// which the -local verification checks. -focus-tighten T (with optional
// -focus-width W) makes the summaries keep T× denser rank coverage around
// the trim threshold, spending the fixed summary budget where the game
// actually queries.
//
// The fleet flags drive the supervision runtime (DESIGN.md §8): -heartbeat
// starts background liveness probes over the game transport, -rejoin lets
// the coordinator re-admit a lost worker at a round boundary (a re-spawned
// `trimlab worker -rejoin` on the old address), -checkpoint-dir persists a
// full coordinator snapshot every -checkpoint-every rounds, and -resume
// restarts a killed coordinator from the latest snapshot — both re-join and
// resume reproduce the uninterrupted shard-local reference record for
// record outside the degraded window, which -local verifies.
//
// In the row game the kept rows live on the workers (DESIGN.md §14): the
// coordinator sees only per-coordinate center deltas and per-leaf pool
// totals each round. `trimlab worker -spill-dir D` backs that pool with
// segment files under D so it survives a kill — a re-spawned
// `-rejoin -spill-dir D` worker recovers it, and a coordinator -resume
// rolls every pool back to the snapshot's manifest before replaying.
//
// Every mode takes the same -seed flag (default 1, must be ≥ 1): the
// experiment mode uses it as the base RNG seed (repetition seeds are
// base + i), the coordinator as the game seed — in -local mode the master
// seed every shard and round stream derives from. The worker accepts it
// only for launch-script symmetry: a worker draws nothing of its own, its
// per-round seeds arrive derived inside the coordinator's directives.
//
// The coordinator/worker subcommands run the scalar collection game as a
// real multi-process cluster: start one `trimlab worker` per machine (or
// port), then point a `trimlab coordinator` at their addresses. For wide
// fleets, interpose `trimlab aggregator` processes (DESIGN.md §13): each
// aggregator dials a group of workers (or deeper aggregators) as its
// -children and serves the merged subtree upstream, so the coordinator's
// -workers list names only the tree's top slots and its per-round merge
// stays O(fan-in) instead of O(fleet). The tier requires -local (a
// coordinator-fed shard cannot be split across a subtree); the board is
// verified against the flat reference over the tree's total leaf count. By default
// the coordinator generates arrivals and ships raw slices, then replays
// the identical game unsharded on the same seed and verifies the final
// trim threshold drifted no more than the allowed rank-space bound. With
// -local the cluster runs the shard-local data plane — workers generate
// their own arrivals from derived seed streams, round directives are O(1)
// — and the coordinator instead verifies the multi-process board against
// the single-process sharded reference record for record, reporting its
// per-round egress bytes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/cluster"
	"repro/internal/collect"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/game"
	"repro/internal/obs"
	"repro/internal/rowstore"
	"repro/internal/stats"
	"repro/internal/wire"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "worker":
			if err := workerMain(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		case "aggregator":
			if err := aggregatorMain(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		case "coordinator":
			if err := coordinatorMain(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		}
	}
	var (
		exp    = flag.String("experiment", "all", "experiment to run: table1..table4, fig4..fig9, variants, blackbox, sharded, distributed, fleet, pipeline, all")
		scale  = flag.String("scale", "quick", "effort: quick, bench, or paper")
		points = flag.Int("points", 3, "attack-ratio points per interval (fig4/fig5)")
		seed   = seedFlag(flag.CommandLine)
	)
	flag.Parse()
	if err := validateSeed(*seed); err != nil {
		fatal(err)
	}

	sc, err := scaleFor(*scale)
	if err != nil {
		fatal(err)
	}
	sc.Seed = *seed

	runners := map[string]func() error{
		"table1": func() error {
			res, err := experiments.TableI(game.UltimatumPayoffs{PBar: 100, TBar: 50, P: 3, T: 1})
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"table2": func() error {
			res, err := experiments.TableII(sc.Seed, *scale == "paper")
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"table3": func() error {
			res, err := experiments.TableIII(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"table4": func() error {
			res, err := experiments.TableIV(0.9)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig4": func() error {
			res, err := experiments.Fig4(sc, *points)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig5": func() error {
			res, err := experiments.Fig5(sc, *points)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig6": func() error {
			res, err := experiments.Fig6(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig7": func() error {
			res, err := experiments.Fig7(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig8": func() error {
			res, err := experiments.Fig8(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig9": func() error {
			ratios, epsilons := fig9Grids(*scale)
			res, err := experiments.Fig9(sc, ratios, epsilons)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"variants": func() error {
			res, err := experiments.Variants(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"blackbox": func() error {
			res, err := experiments.BlackBox(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"sharded": func() error {
			res, err := experiments.Sharded(sc, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"distributed": func() error {
			res, err := experiments.Distributed(sc, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fleet": func() error {
			res, err := experiments.FaultTolerance(sc, 0)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"pipeline": func() error {
			res, err := experiments.Pipelining(sc, nil, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
	}

	order := []string{"table1", "table2", "table3", "table4",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "variants", "blackbox", "sharded", "distributed", "fleet", "pipeline"}

	if *exp == "all" {
		for _, name := range order {
			if err := timed(name, runners[name]); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want one of %v or all)", *exp, order))
	}
	if err := timed(*exp, run); err != nil {
		fatal(err)
	}
}

func scaleFor(name string) (experiments.Scale, error) {
	switch name {
	case "quick":
		return experiments.Quick, nil
	case "bench":
		return experiments.Bench, nil
	case "paper":
		return experiments.Paper, nil
	}
	return experiments.Scale{}, fmt.Errorf("unknown scale %q (want quick, bench, or paper)", name)
}

// fig9Grids reduces the Fig 9 sweep outside paper scale: the full 9×9 grid
// with repetitions is the heaviest experiment in the suite.
func fig9Grids(scale string) (ratios, epsilons []float64) {
	if scale == "paper" {
		return nil, nil // package defaults: the full paper grids
	}
	return []float64{0.05, 0.2, 0.45}, []float64{1, 2, 3, 4, 5}
}

func timed(name string, run func() error) error {
	start := obs.Now()
	fmt.Printf("=== %s ===\n", name)
	if err := run(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("--- %s done in %v\n", name, obs.Since(start).Round(time.Millisecond))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trimlab:", err)
	os.Exit(1)
}

// seedFlag registers the one -seed flag every trimlab mode shares; see the
// command doc for its meaning per mode. Default 1.
func seedFlag(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 1, "RNG seed (≥ 1; base seed for experiments, game/master seed for the coordinator, informational for workers)")
}

// validateSeed enforces the shared contract: repetition seeds are
// base + i, so the base must be a positive integer.
func validateSeed(s int64) error {
	if s < 1 {
		return fmt.Errorf("-seed %d: must be ≥ 1", s)
	}
	return nil
}

// workerMain is the `trimlab worker` subcommand: serve one cluster worker
// until the coordinator sends the stop directive. With -rejoin the worker
// is a re-spawned replacement: it accepts the coordinator's mid-game
// membership grant (Hello/Configure/Join) instead of refusing to be grafted
// into a running game.
func workerMain(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	var (
		listen   = fs.String("listen", ":7101", "address to serve the worker RPC on")
		id       = fs.Int("id", 0, "worker id for log lines (shard order is set by the coordinator's -workers list)")
		rejoin   = fs.Bool("rejoin", false, "accept a mid-game re-join (re-spawned replacement for a lost worker)")
		spillDir = fs.String("spill-dir", "", "directory for the file-backed kept-row pool (row game): kept rows spill to segment files instead of memory and survive a kill — pair with -rejoin so the re-spawned worker recovers its pool and the coordinator's -resume can roll it back")
		seed     = seedFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateSeed(*seed); err != nil {
		return err
	}
	w := cluster.NewWorker(*id)
	mode := ""
	if *rejoin {
		w.AllowRejoin()
		mode = ", re-join enabled"
	}
	if *spillDir != "" {
		dir := *spillDir
		w.SetPoolOpener(func() (rowstore.Pool, error) {
			return rowstore.OpenSpill(dir, rowstore.SpillConfig{})
		})
		mode += fmt.Sprintf(", kept rows spill to %s", dir)
	}
	fmt.Printf("trimlab worker %d: serving on %s (seeds are derived by the coordinator; -seed is accepted for launch symmetry%s)\n", *id, *listen, mode)
	if err := cluster.ListenAndServe(*listen, w); err != nil {
		return err
	}
	fmt.Printf("trimlab worker %d: stopped by coordinator\n", *id)
	return nil
}

// aggregatorMain is the `trimlab aggregator` subcommand: one interior merge
// node of the aggregator tier (DESIGN.md §13). It dials its children —
// workers or deeper aggregators, address order = leaf order — merges their
// per-round reports, and serves the combined subtree report on -listen
// until the coordinator's stop directive arrives through the tree.
func aggregatorMain(args []string) error {
	fs := flag.NewFlagSet("aggregator", flag.ExitOnError)
	var (
		listen   = fs.String("listen", ":7201", "address to serve the aggregator RPC on")
		children = fs.String("children", "", "comma-separated child addresses (required; order = leaf order; workers or deeper aggregators)")
		id       = fs.Int("id", 0, "aggregator id for log lines")
		wait     = fs.Duration("wait", 10*time.Second, "how long to retry dialing children")
		rejoin   = fs.Bool("rejoin", false, "accept a mid-game re-join (re-spawned replacement for a lost aggregator over the same children)")
		compress = fs.Int("compress", 0, "recompression budget b: forward merged sketches of at most b+1 entries, adding at most 1/b rank error per level (0 = lossless; pair with the coordinator's -eps set to the per-level split)")
		obsAddr  = fs.String("obs-addr", "", "serve the node's observability endpoint on this address while it runs: /metrics (Prometheus text), /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *children == "" {
		return fmt.Errorf("aggregator: -children is required (e.g. -children host1:7101,host2:7101)")
	}
	addrs := strings.Split(*children, ",")
	fmt.Printf("trimlab aggregator %d: dialing %d children %v\n", *id, len(addrs), addrs)
	kids, err := agg.DialChildren(addrs, *wait)
	if err != nil {
		return err
	}
	node, err := agg.NewNode(*id, kids...)
	if err != nil {
		return err
	}
	mode := ""
	if *rejoin {
		node.AllowRejoin()
		mode = ", re-join enabled"
	}
	if *compress > 0 {
		node.SetCompress(*compress)
		mode += fmt.Sprintf(", recompressing to ≤ %d entries", *compress+1)
	}
	if *obsAddr != "" {
		met := obs.NewRegistry()
		node.SetMetrics(met)
		ep, err := obs.Serve(*obsAddr, met, nil)
		if err != nil {
			return fmt.Errorf("aggregator: -obs-addr: %w", err)
		}
		defer ep.Close()
		fmt.Printf("trimlab aggregator %d: observability on http://%s/ (/metrics, /debug/pprof/)\n", *id, ep.Addr)
	}
	fmt.Printf("trimlab aggregator %d: serving %d leaves on %s%s\n", *id, node.Leaves(), *listen, mode)
	if err := cluster.ListenAndServe(*listen, node); err != nil {
		return err
	}
	fmt.Printf("trimlab aggregator %d: stopped by coordinator\n", *id)
	return nil
}

// coordinatorMain is the `trimlab coordinator` subcommand: run the scalar
// collection game across TCP workers, then verify it — against an
// unsharded replay of the same seed (threshold-drift bound) by default, or
// against the single-process shard-local reference (record for record) in
// -local mode.
func coordinatorMain(args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	var (
		workers   = fs.String("workers", "", "comma-separated worker addresses (required; order = shard order)")
		rounds    = fs.Int("rounds", 20, "game rounds")
		batch     = fs.Int("batch", 20000, "honest arrivals per round")
		ratio     = fs.Float64("ratio", 0.2, "attack ratio")
		seed      = seedFlag(fs)
		local     = fs.Bool("local", false, "shard-local data plane: workers generate their own arrivals from seeds derived off -seed; round directives are O(1)")
		pipeline  = fs.Bool("pipeline", false, "overlapped round schedule: piggyback round r+1's generation onto round r's classify broadcast — one RTT per round (requires -local)")
		subshards = fs.Int("subshards", 1, "per-core sub-shards per worker: each worker generates and summarizes C sub-shards in parallel goroutines and merges locally (requires -local); the board equals the flat workers x C reference")
		focusT    = fs.Int("focus-tighten", 0, "adaptive summary focus: keep Tx denser rank coverage around the trim threshold (0/1 = off)")
		focusW    = fs.Float64("focus-width", 0, "half-width of the focus rank window (0 = default ±0.05)")
		eps       = fs.Float64("eps", 0, "summary rank-error budget (0 = package default)")
		bound     = fs.Float64("bound", 0.05, "allowed final-threshold drift vs the unsharded run, in reference-rank space (ignored with -local, which verifies exact equality)")
		wait      = fs.Duration("wait", 10*time.Second, "how long to retry dialing workers")
		heartbeat = fs.Duration("heartbeat", 0, "fleet liveness-probe interval (0 disables the background monitor)")
		hbTimeout = fs.Duration("hb-timeout", 0, "how long a worker may go uncontacted before a round-boundary drop (0 = 4x heartbeat)")
		rejoin    = fs.Bool("rejoin", false, "fleet supervision: re-admit lost workers at round boundaries (re-spawn them with `trimlab worker -rejoin`)")
		ckDir     = fs.String("checkpoint-dir", "", "persist a coordinator snapshot every -checkpoint-every rounds into this directory (requires -local)")
		ckEvery   = fs.Int("checkpoint-every", 5, "rounds between checkpoints")
		resume    = fs.Bool("resume", false, "resume the game from the latest snapshot in -checkpoint-dir (requires -local)")
		obsAddr   = fs.String("obs-addr", "", "serve the observability endpoint on this address while the game runs: /metrics (Prometheus text), /events (structured event ring, NDJSON), /debug/pprof/")
		obsEvents = fs.String("obs-events", "", "append every structured event to this file as JSON lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateSeed(*seed); err != nil {
		return err
	}
	addrs := strings.Split(*workers, ",")
	if *workers == "" || len(addrs) == 0 {
		return fmt.Errorf("coordinator: -workers is required (e.g. -workers host1:7101,host2:7101)")
	}
	if (*ckDir != "" || *resume) && !*local {
		return fmt.Errorf("coordinator: checkpointing and resume require the shard-local data plane (-local)")
	}
	if *pipeline && !*local {
		return fmt.Errorf("coordinator: pipelined rounds require the shard-local data plane (-local)")
	}
	if *subshards > 1 && !*local {
		return fmt.Errorf("coordinator: sub-shards require the shard-local data plane (-local)")
	}
	if *resume && *ckDir == "" {
		return fmt.Errorf("coordinator: -resume needs -checkpoint-dir")
	}

	cfg := func() (collect.Config, error) {
		ref := stats.NormalSlice(stats.NewRand(*seed), 5000, 0, 1)
		sch, err := experiments.NewScheme(experiments.Baseline09, 0.9, 0.1)
		if err != nil {
			return collect.Config{}, err
		}
		c := collect.Config{
			Rounds: *rounds, Batch: *batch, AttackRatio: *ratio,
			Reference: ref,
			Collector: sch.Collector, Adversary: sch.Adversary,
			TrimOnBatch:    true,
			SummaryEpsilon: *eps,
			FocusTighten:   *focusT,
			FocusWidth:     *focusW,
		}
		if !*local {
			honest, err := collect.PoolSampler(ref)
			if err != nil {
				return collect.Config{}, err
			}
			c.Honest = honest
			c.Rng = stats.NewRand(*seed + 1)
		}
		return c, nil
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "trimlab coordinator: "+format+"\n", a...)
	}

	// Observability is always collected (the handles are cheap and the
	// instrumentation is provably side-effect-free); -obs-addr only decides
	// whether it is additionally served over HTTP while the game runs.
	met := obs.NewRegistry()
	ring := obs.NewRing(256)
	sinks := []obs.Sink{obs.PrintfSink(logf), ring.Sink()}
	if *obsEvents != "" {
		f, err := os.OpenFile(*obsEvents, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("coordinator: -obs-events: %w", err)
		}
		defer f.Close()
		sinks = append(sinks, obs.JSONL(f))
	}
	olog := obs.NewLogger(sinks...)
	if *obsAddr != "" {
		ep, err := obs.Serve(*obsAddr, met, ring)
		if err != nil {
			return fmt.Errorf("coordinator: -obs-addr: %w", err)
		}
		defer ep.Close()
		fmt.Printf("trimlab coordinator: observability on http://%s/ (/metrics, /events, /debug/pprof/)\n", ep.Addr)
	}

	var fcfg *fleet.Config
	if *heartbeat > 0 || *rejoin {
		fcfg = &fleet.Config{Heartbeat: *heartbeat, Timeout: *hbTimeout, Rejoin: *rejoin, Log: olog}
	}
	var ck *fleet.Checkpointer
	if *ckDir != "" {
		var err error
		if ck, err = fleet.NewCheckpointer(*ckDir, *ckEvery); err != nil {
			return err
		}
	}
	var snap *wire.Snapshot
	if *resume {
		var path string
		var err error
		if snap, path, err = fleet.LoadLatest(*ckDir); err != nil {
			return err
		}
		fmt.Printf("trimlab coordinator: resuming from %s (round %d of %d)\n", path, snap.NextRound, *rounds)
	}

	fmt.Printf("trimlab coordinator: dialing %d workers %v\n", len(addrs), addrs)
	tr, err := cluster.Dial(addrs, *wait)
	if err != nil {
		return err
	}
	ccfg, err := cfg()
	if err != nil {
		return err
	}
	var gen *collect.ShardGen
	if *local {
		gen = &collect.ShardGen{MasterSeed: *seed}
	}
	start := obs.Now()
	clustered, err := collect.RunCluster(collect.ClusterConfig{
		Config:     ccfg,
		Transport:  tr,
		Gen:        gen,
		SubShards:  *subshards,
		Pipeline:   *pipeline,
		Log:        olog,
		Metrics:    met,
		Fleet:      fcfg,
		Checkpoint: ck,
		Resume:     snap,
	})
	if err != nil {
		return err
	}
	elapsed := obs.Since(start).Round(time.Millisecond)

	fmt.Printf("cluster game: %d rounds x batch %d over %d workers in %v (%d shards lost)\n",
		*rounds, *batch, len(addrs), elapsed, clustered.LostShards)
	fmt.Printf("  poison retained %.5f, honest lost %.5f, kept mean %.4f, kept p99 %.4f\n",
		clustered.Board.PoisonRetention(), clustered.Board.HonestLoss(),
		clustered.KeptMean(), clustered.KeptQuantile(0.99))
	fmt.Printf("  coordinator egress: %d B total, %d B configure, %.0f B/round\n",
		clustered.EgressBytes, clustered.EgressConfigBytes,
		float64(clustered.EgressBytes-clustered.EgressConfigBytes)/float64(*rounds))
	tm := clustered.Timing
	fmt.Printf("  phase timing: summarize %v, generate %v, classify %v, configure %v, admission %v — %v/round over %d rounds\n",
		tm.Summarize.Round(time.Millisecond), tm.Generate.Round(time.Millisecond),
		tm.Classify.Round(time.Millisecond), tm.Configure.Round(time.Millisecond),
		tm.Admission.Round(time.Millisecond), tm.PerRound().Round(time.Microsecond), tm.Rounds)
	if clustered.TreeHeight > 0 {
		fmt.Printf("  merge topology: %d leaves behind %d slots, height %d; coordinator merge %v (%v/round)\n",
			clustered.TreeLeaves, len(addrs), clustered.TreeHeight,
			tm.Merge.Round(time.Millisecond),
			(tm.Merge / time.Duration(max(tm.Rounds, 1))).Round(time.Microsecond))
	} else {
		fmt.Printf("  coordinator merge: %v total, %v/round\n",
			tm.Merge.Round(time.Millisecond),
			(tm.Merge / time.Duration(max(tm.Rounds, 1))).Round(time.Microsecond))
	}
	for _, l := range clustered.Losses {
		fmt.Printf("  shard loss: round %d (%s): worker %d, honest range [%d, %d)\n",
			l.Round, l.Phase, l.Worker, l.Lo, l.Hi)
	}
	for _, ev := range clustered.FleetEvents {
		fmt.Printf("  fleet: epoch %d: %s worker %d, round %d\n", ev.Epoch, ev.Kind, ev.Worker, ev.Round)
	}
	printObsSummary(met, len(addrs))

	if *local {
		// The flat reference layout: the tree's total leaf count (learned by
		// the coordinator from the replies), each leaf running C sub-shards
		// in C flat slots. A flat fleet that ended short of workers reports
		// end-of-run leaves below len(addrs); the launch width is the
		// reference there. A TREE fleet that ended short of leaves has no
		// wire-visible launch width — verification then runs over the
		// end-of-run width and reports the pre-loss rounds as divergence,
		// which is the loud failure an operator should see.
		flat := clustered.TreeLeaves
		if flat < len(addrs) {
			flat = len(addrs)
		}
		if *subshards > 1 {
			flat *= *subshards
		}
		return verifyShardLocal(cfg, gen, clustered, flat, *rounds, *rejoin)
	}

	ucfg, err := cfg()
	if err != nil {
		return err
	}
	unsharded, err := collect.Run(ucfg)
	if err != nil {
		return err
	}
	return verifyThresholdDrift(ucfg, clustered, unsharded, *bound)
}

// printObsSummary digests the run's metrics registry into the end-of-run
// report: per-phase fan-out latency quantiles from the
// trimlab_phase_seconds histograms (with the network share where workers
// reported busy time), and a straggler ranking of the workers by mean
// busy time per answered call.
func printObsSummary(met *obs.Registry, workers int) {
	phases := []string{"configure", "join", "scale", "generate", "summarize", "classify", "classify+generate", "admission"}
	header := false
	for _, ph := range phases {
		h := met.Histogram("trimlab_phase_seconds", obs.TimeBuckets, "phase", ph)
		if h.Count() == 0 {
			continue
		}
		if !header {
			fmt.Println("  phase latency (coordinator fan-out, p50/p99 from fixed-bucket histograms):")
			header = true
		}
		line := fmt.Sprintf("    %-18s n=%-4d p50 %-9v p99 %v",
			ph, h.Count(), quantileDuration(h, 0.5), quantileDuration(h, 0.99))
		if net := met.Histogram("trimlab_phase_net_seconds", obs.TimeBuckets, "phase", ph); net.Count() > 0 {
			line += fmt.Sprintf("  (net p50 %v)", quantileDuration(net, 0.5))
		}
		fmt.Println(line)
	}

	// Aggregator-tier digest (DESIGN.md §13): per-level merge latency up the
	// tree (level 1 is just above the leaves) — levels are contiguous, so
	// the first silent level ends the walk.
	for lvl := 1; ; lvl++ {
		h := met.Histogram("trimlab_agg_merge_seconds", obs.TimeBuckets, "level", strconv.Itoa(lvl))
		if h.Count() == 0 {
			break
		}
		if lvl == 1 {
			fmt.Printf("  aggregator tier: %.0f leaves, height %.0f\n",
				met.Gauge("trimlab_tree_leaves").Value(), met.Gauge("trimlab_tree_height").Value())
		}
		fmt.Printf("    level %d merge      n=%-4d p50 %-9v p99 %v\n",
			lvl, h.Count(), quantileDuration(h, 0.5), quantileDuration(h, 0.99))
	}

	// Summary ingest digest (DESIGN.md §12): the run-long exact point count
	// the worker sketches absorbed, and the aggregate throughput over the
	// workers' summarize busy time.
	if pts := met.Counter("trimlab_ingest_points_total").Value(); pts > 0 {
		var sumNanos int64
		for w := 0; w < workers; w++ {
			sumNanos += met.Counter("trimlab_worker_phase_nanos_total",
				"phase", "summarize", "worker", strconv.Itoa(w)).Value()
		}
		line := fmt.Sprintf("  summary ingest: %d points", pts)
		if sumNanos > 0 {
			line += fmt.Sprintf(" at %.2f Mpts/s of worker summarize time",
				float64(pts)*1e3/float64(sumNanos))
		}
		fmt.Println(line)
	}

	type row struct {
		worker int
		calls  int64
		busy   time.Duration
	}
	var rows []row
	for w := 0; w < workers; w++ {
		ws := strconv.Itoa(w)
		calls := met.Counter("trimlab_worker_calls_total", "worker", ws).Value()
		if calls == 0 {
			continue
		}
		var busy int64
		for _, ph := range []string{"generate", "summarize", "classify"} {
			busy += met.Counter("trimlab_worker_phase_nanos_total", "phase", ph, "worker", ws).Value()
		}
		rows = append(rows, row{worker: w, calls: calls, busy: time.Duration(busy)})
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		mi := rows[i].busy / time.Duration(rows[i].calls)
		mj := rows[j].busy / time.Duration(rows[j].calls)
		if mi != mj {
			return mi > mj
		}
		return rows[i].worker < rows[j].worker
	})
	fmt.Println("  worker busy time (straggler ranking, busiest mean first):")
	for _, r := range rows {
		mean := r.busy / time.Duration(r.calls)
		fmt.Printf("    worker %d: %v over %d calls (%v/call)\n",
			r.worker, r.busy.Round(time.Microsecond), r.calls, mean.Round(time.Microsecond))
	}
}

// quantileDuration rounds a histogram quantile (seconds) to a printable
// duration.
func quantileDuration(h *obs.Histogram, q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(time.Second)).Round(time.Microsecond)
}

// verifyShardLocal checks a -local run against the single-process
// shard-local reference record for record, skipping only the degraded
// window of a supervised run — the rounds from the first shard loss up to
// (but excluding) the round the membership became whole again. With -rejoin
// a run that never became whole again fails the check: the operator asked
// for recovery and did not get it.
func verifyShardLocal(cfg func() (collect.Config, error), gen *collect.ShardGen, clustered *collect.Result, workers, rounds int, rejoin bool) error {
	rcfg, err := cfg()
	if err != nil {
		return err
	}
	reference, err := collect.RunSharded(collect.ShardedConfig{
		Config: rcfg, Shards: workers, Gen: gen,
	})
	if err != nil {
		return err
	}
	if len(clustered.Losses) == 0 {
		for i := range reference.Board.Records {
			if !reference.Board.Records[i].Equal(clustered.Board.Records[i]) {
				return fmt.Errorf("coordinator: round %d diverged from the shard-local reference:\nreference %+v\ncluster   %+v",
					i+1, reference.Board.Records[i], clustered.Board.Records[i])
			}
		}
		fmt.Println("board matches the single-process shard-local reference record for record: OK")
		return nil
	}
	if rejoin && clustered.WholeSince == 0 {
		return fmt.Errorf("coordinator: worker lost and never re-admitted (re-join requested): losses %+v", clustered.Losses)
	}
	firstLoss := clustered.Losses[0].Round
	verified := 0
	for i := range reference.Board.Records {
		r := i + 1
		if r >= firstLoss && (clustered.WholeSince == 0 || r < clustered.WholeSince) {
			continue // degraded window: fewer live shards played this round
		}
		if !reference.Board.Records[i].Equal(clustered.Board.Records[i]) {
			return fmt.Errorf("coordinator: round %d diverged from the shard-local reference outside the degraded window:\nreference %+v\ncluster   %+v",
				r, reference.Board.Records[i], clustered.Board.Records[i])
		}
		verified++
	}
	if clustered.WholeSince > 0 {
		fmt.Printf("pre-loss and post-recovery records (%d of %d, degraded window round %d-%d excluded) match the shard-local reference record for record: OK\n",
			verified, rounds, firstLoss, clustered.WholeSince-1)
	} else {
		fmt.Printf("pre-loss records (%d of %d) match the shard-local reference record for record: OK (fleet ended degraded)\n",
			verified, rounds)
	}
	return nil
}

// verifyThresholdDrift is the coordinator-fed acceptance check: final
// threshold within the rank-space bound of the unsharded replay.
func verifyThresholdDrift(ucfg collect.Config, clustered, unsharded *collect.Result, bound float64) error {
	refSorted := append([]float64(nil), ucfg.Reference...)
	sort.Float64s(refSorted)
	last := len(clustered.Board.Records) - 1
	ct := clustered.Board.Records[last].ThresholdValue
	ut := unsharded.Board.Records[last].ThresholdValue
	drift := stats.PercentileRankSorted(refSorted, ct) - stats.PercentileRankSorted(refSorted, ut)
	if drift < 0 {
		drift = -drift
	}
	fmt.Printf("final threshold: cluster %.6f vs unsharded %.6f (rank drift %.5f, bound %.5f)\n",
		ct, ut, drift, bound)
	if drift > bound {
		return fmt.Errorf("coordinator: final-threshold drift %.5f exceeds bound %.5f", drift, bound)
	}
	fmt.Println("threshold drift within bound: OK")
	return nil
}
