// Command trimlab runs any of the paper's experiments from the command
// line and prints the same rows/series the paper reports, and hosts the
// distributed collector's processes.
//
// Usage:
//
//	trimlab -experiment fig4 [-scale quick|bench|paper] [-points N] [-seed S]
//	trimlab worker -listen :7101
//	trimlab coordinator -workers host1:7101,host2:7101 [-seed S] [-rounds N] [-batch N]
//
// Experiments: table1, table2, table3, table4, fig4, fig5, fig6, fig7,
// fig8, fig9, variants, blackbox, sharded, distributed, all.
//
// The coordinator/worker subcommands run the scalar collection game as a
// real multi-process cluster: start one `trimlab worker` per machine (or
// port), then point a `trimlab coordinator` at their addresses. The
// coordinator also replays the identical game unsharded on the same seed
// and verifies the final trim threshold drifted no more than the allowed
// rank-space bound.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/collect"
	"repro/internal/experiments"
	"repro/internal/game"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "worker":
			if err := workerMain(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		case "coordinator":
			if err := coordinatorMain(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		}
	}
	var (
		exp    = flag.String("experiment", "all", "experiment to run: table1..table4, fig4..fig9, variants, blackbox, sharded, distributed, all")
		scale  = flag.String("scale", "quick", "effort: quick, bench, or paper")
		points = flag.Int("points", 3, "attack-ratio points per interval (fig4/fig5)")
		seed   = flag.Int64("seed", 1, "base RNG seed")
	)
	flag.Parse()

	sc, err := scaleFor(*scale)
	if err != nil {
		fatal(err)
	}
	sc.Seed = *seed

	runners := map[string]func() error{
		"table1": func() error {
			res, err := experiments.TableI(game.UltimatumPayoffs{PBar: 100, TBar: 50, P: 3, T: 1})
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"table2": func() error {
			res, err := experiments.TableII(sc.Seed, *scale == "paper")
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"table3": func() error {
			res, err := experiments.TableIII(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"table4": func() error {
			res, err := experiments.TableIV(0.9)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig4": func() error {
			res, err := experiments.Fig4(sc, *points)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig5": func() error {
			res, err := experiments.Fig5(sc, *points)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig6": func() error {
			res, err := experiments.Fig6(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig7": func() error {
			res, err := experiments.Fig7(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig8": func() error {
			res, err := experiments.Fig8(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"fig9": func() error {
			ratios, epsilons := fig9Grids(*scale)
			res, err := experiments.Fig9(sc, ratios, epsilons)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"variants": func() error {
			res, err := experiments.Variants(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"blackbox": func() error {
			res, err := experiments.BlackBox(sc)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"sharded": func() error {
			res, err := experiments.Sharded(sc, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
		"distributed": func() error {
			res, err := experiments.Distributed(sc, nil)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		},
	}

	order := []string{"table1", "table2", "table3", "table4",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "variants", "blackbox", "sharded", "distributed"}

	if *exp == "all" {
		for _, name := range order {
			if err := timed(name, runners[name]); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want one of %v or all)", *exp, order))
	}
	if err := timed(*exp, run); err != nil {
		fatal(err)
	}
}

func scaleFor(name string) (experiments.Scale, error) {
	switch name {
	case "quick":
		return experiments.Quick, nil
	case "bench":
		return experiments.Bench, nil
	case "paper":
		return experiments.Paper, nil
	}
	return experiments.Scale{}, fmt.Errorf("unknown scale %q (want quick, bench, or paper)", name)
}

// fig9Grids reduces the Fig 9 sweep outside paper scale: the full 9×9 grid
// with repetitions is the heaviest experiment in the suite.
func fig9Grids(scale string) (ratios, epsilons []float64) {
	if scale == "paper" {
		return nil, nil // package defaults: the full paper grids
	}
	return []float64{0.05, 0.2, 0.45}, []float64{1, 2, 3, 4, 5}
}

func timed(name string, run func() error) error {
	start := time.Now()
	fmt.Printf("=== %s ===\n", name)
	if err := run(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("--- %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trimlab:", err)
	os.Exit(1)
}

// workerMain is the `trimlab worker` subcommand: serve one cluster worker
// until the coordinator sends the stop directive.
func workerMain(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	var (
		listen = fs.String("listen", ":7101", "address to serve the worker RPC on")
		id     = fs.Int("id", 0, "worker id for log lines (shard order is set by the coordinator's -workers list)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cluster.NewWorker(*id)
	fmt.Printf("trimlab worker %d: serving on %s\n", *id, *listen)
	if err := cluster.ListenAndServe(*listen, w); err != nil {
		return err
	}
	fmt.Printf("trimlab worker %d: stopped by coordinator\n", *id)
	return nil
}

// coordinatorMain is the `trimlab coordinator` subcommand: run the scalar
// collection game across TCP workers, then verify the final threshold
// against an unsharded replay of the same seed.
func coordinatorMain(args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	var (
		workers = fs.String("workers", "", "comma-separated worker addresses (required; order = shard order)")
		rounds  = fs.Int("rounds", 20, "game rounds")
		batch   = fs.Int("batch", 20000, "honest arrivals per round")
		ratio   = fs.Float64("ratio", 0.2, "attack ratio")
		seed    = fs.Int64("seed", 1, "RNG seed (shared by the cluster run and the unsharded verification run)")
		eps     = fs.Float64("eps", 0, "summary rank-error budget (0 = package default)")
		bound   = fs.Float64("bound", 0.05, "allowed final-threshold drift vs the unsharded run, in reference-rank space")
		wait    = fs.Duration("wait", 10*time.Second, "how long to retry dialing workers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := strings.Split(*workers, ",")
	if *workers == "" || len(addrs) == 0 {
		return fmt.Errorf("coordinator: -workers is required (e.g. -workers host1:7101,host2:7101)")
	}

	cfg := func() (collect.Config, error) {
		ref := stats.NormalSlice(stats.NewRand(*seed), 5000, 0, 1)
		honest, err := collect.PoolSampler(ref)
		if err != nil {
			return collect.Config{}, err
		}
		sch, err := experiments.NewScheme(experiments.Baseline09, 0.9, 0.1)
		if err != nil {
			return collect.Config{}, err
		}
		return collect.Config{
			Rounds: *rounds, Batch: *batch, AttackRatio: *ratio,
			Reference: ref, Honest: honest,
			Collector: sch.Collector, Adversary: sch.Adversary,
			TrimOnBatch:    true,
			SummaryEpsilon: *eps,
			Rng:            stats.NewRand(*seed + 1),
		}, nil
	}

	fmt.Printf("trimlab coordinator: dialing %d workers %v\n", len(addrs), addrs)
	tr, err := cluster.Dial(addrs, *wait)
	if err != nil {
		return err
	}
	ccfg, err := cfg()
	if err != nil {
		return err
	}
	start := time.Now()
	clustered, err := collect.RunCluster(collect.ClusterConfig{
		Config:    ccfg,
		Transport: tr,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "trimlab coordinator: "+format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	ucfg, err := cfg()
	if err != nil {
		return err
	}
	unsharded, err := collect.Run(ucfg)
	if err != nil {
		return err
	}

	refSorted := append([]float64(nil), ucfg.Reference...)
	sort.Float64s(refSorted)
	last := len(clustered.Board.Records) - 1
	ct := clustered.Board.Records[last].ThresholdValue
	ut := unsharded.Board.Records[last].ThresholdValue
	drift := stats.PercentileRankSorted(refSorted, ct) - stats.PercentileRankSorted(refSorted, ut)
	if drift < 0 {
		drift = -drift
	}

	fmt.Printf("cluster game: %d rounds x batch %d over %d workers in %v (%d shards lost)\n",
		*rounds, *batch, len(addrs), elapsed, clustered.LostShards)
	fmt.Printf("  poison retained %.5f, honest lost %.5f, kept mean %.4f, kept p99 %.4f\n",
		clustered.Board.PoisonRetention(), clustered.Board.HonestLoss(),
		clustered.KeptMean(), clustered.KeptQuantile(0.99))
	fmt.Printf("final threshold: cluster %.6f vs unsharded %.6f (rank drift %.5f, bound %.5f)\n",
		ct, ut, drift, *bound)
	if drift > *bound {
		return fmt.Errorf("coordinator: final-threshold drift %.5f exceeds bound %.5f", drift, *bound)
	}
	fmt.Println("threshold drift within bound: OK")
	return nil
}
