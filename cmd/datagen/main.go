// Command datagen emits the five evaluation datasets as CSV, at full
// published size or scaled down.
//
// Usage:
//
//	datagen -dataset control -out control.csv [-n 600] [-seed 1]
//
// Datasets: control, vehicle, letter, taxi, creditcard. When -n is 0 the
// published size is used (Table II).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func main() {
	var (
		name = flag.String("dataset", "", "control, vehicle, letter, taxi, or creditcard")
		out  = flag.String("out", "", "output CSV path (default stdout)")
		n    = flag.Int("n", 0, "instance count (0 = published size)")
		seed = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	rng := stats.NewRand(*seed)
	var d *dataset.Dataset
	switch *name {
	case "control":
		d = pick(*n, dataset.ControlSize, func(k int) *dataset.Dataset { return dataset.ControlN(rng, k) })
	case "vehicle":
		d = pick(*n, dataset.VehicleSize, func(k int) *dataset.Dataset { return dataset.VehicleN(rng, k) })
	case "letter":
		d = pick(*n, dataset.LetterSize, func(k int) *dataset.Dataset { return dataset.LetterN(rng, k) })
	case "taxi":
		d = pick(*n, dataset.TaxiSize, func(k int) *dataset.Dataset { return dataset.TaxiN(rng, k) })
	case "creditcard":
		d = pick(*n, dataset.CreditcardSize, func(k int) *dataset.Dataset { return dataset.CreditcardN(rng, k) })
	default:
		fatal(fmt.Errorf("unknown dataset %q", *name))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := d.WriteCSV(w); err != nil {
		fatal(err)
	}
	info := d.Summary()
	fmt.Fprintf(os.Stderr, "datagen: wrote %s — %d instances × %d features, %d clusters\n",
		info.Name, info.Instances, info.Features, info.Clusters)
}

func pick(n, published int, gen func(int) *dataset.Dataset) *dataset.Dataset {
	if n <= 0 {
		n = published
	}
	return gen(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
