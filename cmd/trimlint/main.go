// Command trimlint runs the repo's custom go/analysis suite — the
// machine-enforced determinism, wire-versioning, and enum-exhaustiveness
// invariants (DESIGN.md §10) — over package patterns:
//
//	go run ./cmd/trimlint ./...        # lint; nonzero exit on any diagnostic
//	go run ./cmd/trimlint -fix ./...   # regenerate internal/wire/wire.lock, then lint
//
// The binary is double-faced: invoked with package patterns it re-executes
// itself as `go vet -vettool=<self> <patterns>`, letting the go command do
// package loading, caching, and export data; invoked by go vet (with -V,
// -flags, or a *.cfg file) it speaks the unitchecker protocol. That keeps
// the offline dependency surface to the vendored go/analysis core — no
// go/packages, no module proxy.
//
// Suppressions use `//trimlint:allow <analyzer> <reason>` on or above the
// offending line; an allow without a known analyzer name or a reason is
// itself a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/load"
	"repro/internal/analysis/trimlint"
	"repro/internal/analysis/wirever"
)

func main() {
	if vetProtocol(os.Args[1:]) {
		unitchecker.Main(trimlint.Analyzers()...) // does not return
	}

	fix := flag.Bool("fix", false, "regenerate internal/wire/wire.lock from the current payload surface before linting")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: trimlint [-fix] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *fix {
		if err := writeLock(); err != nil {
			fmt.Fprintf(os.Stderr, "trimlint: -fix: %v\n", err)
			os.Exit(2)
		}
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "trimlint: %v\n", err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout, cmd.Stderr, cmd.Stdin = os.Stdout, os.Stderr, os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "trimlint: %v\n", err)
		os.Exit(2)
	}
}

// vetProtocol reports whether the arguments are a go vet driver
// invocation (-V=full / -flags handshake or a unitchecker *.cfg file)
// rather than user-facing package patterns.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if a == "-flags" || strings.HasPrefix(a, "-V") || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// wireDir is where the lock lives, relative to the module root (the
// working directory — trimlint runs from the repo root, as CI and
// scripts/lint.sh do).
const wireDir = "internal/wire"

// writeLock regenerates wire.lock from the type-checked wire package. It
// refuses to overwrite a lock whose surface changed while wire.Version
// stayed put: the fix path must not launder an unbumped payload change.
func writeLock() error {
	modPath, err := modulePath("go.mod")
	if err != nil {
		return err
	}
	root, err := os.Getwd()
	if err != nil {
		return err
	}
	loader := load.New(load.ModuleResolver(modPath, root))
	pkg, err := loader.Load(modPath + "/" + wireDir)
	if err != nil {
		return err
	}
	content, err := wirever.Lock(pkg.Types)
	if err != nil {
		return err
	}
	lockPath := filepath.Join(root, wireDir, wirever.LockName)
	if old, err := os.ReadFile(lockPath); err == nil {
		if lock, err := wirever.ParseLock(old); err == nil {
			cur, _ := wirever.ParseLock([]byte(content))
			if lock.Version == cur.Version && !equal(lock.Surface, cur.Surface) {
				return fmt.Errorf("wire payload surface changed but wire.Version is still %d; bump Version (and MinVersion) first, then re-run -fix", cur.Version)
			}
		}
	}
	if err := os.WriteFile(lockPath, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trimlint: wrote %s\n", filepath.Join(wireDir, wirever.LockName))
	return nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("run from the module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
