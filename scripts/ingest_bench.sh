#!/usr/bin/env bash
# Ingest throughput gate (DESIGN.md §12): run the summary ingest trajectory
# (BenchmarkStreamPush → PushBatch → PushParallel, 100k points per op),
# take the min ns/op of each over -count interleaved runs, write the
# machine-readable BENCH_ingest.json, and fail unless the buffered batch
# path is at least INGEST_SPEEDUP_MIN times the single-push baseline
# (default 3.0 — serial batch measures ~4-4.7x; the gate leaves headroom
# for shared runners). The parallel row is reported but not gated: its
# speedup is batch x cores — that product is the >= 5x worker-ingest
# target — and CI core counts vary.
set -euo pipefail
cd "$(dirname "$0")/.."

INGEST_SPEEDUP_MIN="${INGEST_SPEEDUP_MIN:-3.0}"
COUNT="${COUNT:-6}"
BENCHTIME="${BENCHTIME:-2x}"
JSON="${JSON:-BENCH_ingest.json}"
OUT="$(mktemp)"

go test ./internal/stats/summary -run=NONE \
  -bench='^BenchmarkStreamPush(Batch|Parallel)?$' \
  -benchtime="$BENCHTIME" -count="$COUNT" | tee "$OUT"

awk -v min="$INGEST_SPEEDUP_MIN" -v json="$JSON" '
  $1 ~ /^BenchmarkStreamPush-|^BenchmarkStreamPush$/          { if (single == 0 || $3 < single) single = $3 }
  $1 ~ /^BenchmarkStreamPushBatch(-|$)/                       { if (batch == 0 || $3 < batch) batch = $3 }
  $1 ~ /^BenchmarkStreamPushParallel(-|$)/                    { if (par == 0 || $3 < par) par = $3 }
  END {
    if (single == 0 || batch == 0 || par == 0) {
      print "FAIL: missing benchmark results (single=" single ", batch=" batch ", parallel=" par ")" > "/dev/stderr"
      exit 1
    }
    points = 100000
    speedup = single / batch
    printf "{\n" > json
    printf "  \"points_per_op\": %d,\n", points >> json
    printf "  \"single_ns_op\": %d,\n", single >> json
    printf "  \"batch_ns_op\": %d,\n", batch >> json
    printf "  \"parallel_ns_op\": %d,\n", par >> json
    printf "  \"single_points_per_sec\": %.0f,\n", points * 1e9 / single >> json
    printf "  \"batch_points_per_sec\": %.0f,\n", points * 1e9 / batch >> json
    printf "  \"parallel_points_per_sec\": %.0f,\n", points * 1e9 / par >> json
    printf "  \"batch_speedup\": %.2f,\n", speedup >> json
    printf "  \"parallel_speedup\": %.2f\n", single / par >> json
    printf "}\n" >> json
    printf "ingest: single %d ns/op, batch %d ns/op (%.2fx), parallel %d ns/op (%.2fx), gate %.1fx\n",
      single, batch, speedup, par, single / par, min
    if (speedup < min) {
      print "FAIL: batch ingest speedup below the gate" > "/dev/stderr"
      exit 1
    }
  }' "$OUT"

echo "ingest throughput: OK (wrote $JSON)"
