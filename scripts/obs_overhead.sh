#!/usr/bin/env bash
# Observability overhead gate: the instrumented cluster round
# (BenchmarkClusterRoundObs — registry + logger + ring attached) must cost
# within OBS_OVERHEAD_MAX (default 1.03, i.e. ≤ 3%) of the unobserved
# BenchmarkClusterRound. Both benchmarks run interleaved -count times and
# the minima are compared — the min is the noise-robust estimator for a
# "how fast can this go" ratio on shared CI hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

OBS_OVERHEAD_MAX="${OBS_OVERHEAD_MAX:-1.03}"
COUNT="${COUNT:-6}"
BENCHTIME="${BENCHTIME:-2x}"
OUT="$(mktemp)"

go test ./internal/collect -run=NONE \
  -bench='^BenchmarkClusterRound(Obs)?$/Workers4' \
  -benchtime="$BENCHTIME" -count="$COUNT" | tee "$OUT"

awk -v max="$OBS_OVERHEAD_MAX" '
  $1 ~ /^BenchmarkClusterRoundObs\// { if (obs == 0 || $3 < obs) obs = $3 }
  $1 ~ /^BenchmarkClusterRound\//    { if (base == 0 || $3 < base) base = $3 }
  END {
    if (base == 0 || obs == 0) {
      print "FAIL: missing benchmark results (base=" base ", obs=" obs ")" > "/dev/stderr"
      exit 1
    }
    ratio = obs / base
    printf "obs overhead: baseline %d ns/op, instrumented %d ns/op, ratio %.4f (max %s)\n", base, obs, ratio, max
    if (ratio > max) {
      print "FAIL: instrumentation overhead exceeds the budget" > "/dev/stderr"
      exit 1
    }
  }' "$OUT"

echo "obs overhead: OK"
