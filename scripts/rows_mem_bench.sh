#!/usr/bin/env bash
# Worker-held kept-row gate (DESIGN.md §14): run the rows memory pair
# (BenchmarkRowsRoundResident vs BenchmarkRowsRoundStored, each at 1x and
# 4x total rows) and the rows latency pair (BenchmarkRowsRoundDelayed vs
# BenchmarkRowsRoundPipelined, 5 ms injected per-call latency), take the
# min of each metric over -count interleaved runs, write the
# machine-readable BENCH_rows.json, and fail unless
#   1. the stored (worker-held pool) coordinator retained bytes stay flat:
#      stored 4x <= ROWS_MEM_FLAT_MAX x max(stored 1x, ROWS_MEM_FLOOR) —
#      the floor keeps the ratio meaningful when the flat footprint is a
#      few hundred bytes of board + manifest;
#   2. the resident baseline actually grows with rows (resident 4x/1x >=
#      ROWS_MEM_GROWTH), proving the metric is sensitive and the stored
#      flatness is not a measurement artifact; and
#   3. the pipelined late-center row round wins >= ROWS_SPEEDUP_MIN on
#      ms/round under injected latency (R+3 fan-outs vs 3R: ~2.1x at 12
#      rounds; the 1.5 default leaves headroom for shared runners).
set -euo pipefail
cd "$(dirname "$0")/.."

ROWS_SPEEDUP_MIN="${ROWS_SPEEDUP_MIN:-1.5}"
ROWS_MEM_FLAT_MAX="${ROWS_MEM_FLAT_MAX:-1.5}"
ROWS_MEM_GROWTH="${ROWS_MEM_GROWTH:-2.0}"
ROWS_MEM_FLOOR="${ROWS_MEM_FLOOR:-4096}"
COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-2x}"
JSON="${JSON:-BENCH_rows.json}"
OUT="$(mktemp)"

go test ./internal/collect -run=NONE \
  -bench='^BenchmarkRowsRound(Resident|Stored)$/Rows(1|4)x$|^BenchmarkRowsRound(Delayed|Pipelined)$' \
  -benchtime="$BENCHTIME" -count="$COUNT" | tee "$OUT"

awk -v win="$ROWS_SPEEDUP_MIN" -v flat="$ROWS_MEM_FLAT_MAX" \
    -v growth="$ROWS_MEM_GROWTH" -v floor="$ROWS_MEM_FLOOR" -v json="$JSON" '
  # Custom metrics are value-then-unit columns; pull the value preceding
  # the requested unit token.
  function metric(unit,   i) {
    for (i = 2; i <= NF; i++) if ($i == unit) return $(i - 1)
    return -1
  }
  function fold(cur, v) { return (cur < 0 || v < cur) ? v : cur }
  BEGIN { r1 = r4 = s1 = s4 = del = pip = -1 }
  $1 ~ /^BenchmarkRowsRoundResident\/Rows1x(-[0-9]+)?$/ { r1 = fold(r1, metric("coordB")) }
  $1 ~ /^BenchmarkRowsRoundResident\/Rows4x(-[0-9]+)?$/ { r4 = fold(r4, metric("coordB")) }
  $1 ~ /^BenchmarkRowsRoundStored\/Rows1x(-[0-9]+)?$/   { s1 = fold(s1, metric("coordB")) }
  $1 ~ /^BenchmarkRowsRoundStored\/Rows4x(-[0-9]+)?$/   { s4 = fold(s4, metric("coordB")) }
  $1 ~ /^BenchmarkRowsRoundDelayed(-[0-9]+)?$/          { del = fold(del, metric("ms/round")) }
  $1 ~ /^BenchmarkRowsRoundPipelined(-[0-9]+)?$/        { pip = fold(pip, metric("ms/round")) }
  END {
    if (r1 < 0 || r4 < 0 || s1 < 0 || s4 < 0 || del <= 0 || pip <= 0) {
      print "FAIL: missing benchmark results (resident=" r1 "/" r4 \
            ", stored=" s1 "/" s4 ", delayed=" del ", pipelined=" pip ")" > "/dev/stderr"
      exit 1
    }
    base = (s1 > floor) ? s1 : floor
    flatness = s4 / base
    grow = r4 / ((r1 > floor) ? r1 : floor)
    speedup = del / pip
    printf "{\n" > json
    printf "  \"resident_1x_coord_bytes\": %d,\n", r1 >> json
    printf "  \"resident_4x_coord_bytes\": %d,\n", r4 >> json
    printf "  \"stored_1x_coord_bytes\": %d,\n", s1 >> json
    printf "  \"stored_4x_coord_bytes\": %d,\n", s4 >> json
    printf "  \"resident_growth\": %.2f,\n", grow >> json
    printf "  \"stored_flatness\": %.2f,\n", flatness >> json
    printf "  \"delayed_ms_round\": %.3f,\n", del >> json
    printf "  \"pipelined_ms_round\": %.3f,\n", pip >> json
    printf "  \"pipeline_speedup\": %.2f\n", speedup >> json
    printf "}\n" >> json
    printf "rows memory: resident %d -> %d B (%.2fx), stored %d -> %d B (%.2fx vs floor %d, max %s)\n",
      r1, r4, grow, s1, s4, flatness, floor, flat
    printf "rows latency: delayed %.2f ms/round, pipelined %.2f ms/round (%.2fx, min %s)\n",
      del, pip, speedup, win
    if (flatness > flat) {
      print "FAIL: stored coordinator bytes grew with total rows (pool no longer worker-held)" > "/dev/stderr"
      exit 1
    }
    if (grow < growth) {
      print "FAIL: resident baseline did not grow with rows; the memory metric lost sensitivity" > "/dev/stderr"
      exit 1
    }
    if (speedup < win) {
      print "FAIL: pipelined row round below the ms/round gate" > "/dev/stderr"
      exit 1
    }
  }' "$OUT"

echo "rows memory & latency gate: OK (wrote $JSON)"
