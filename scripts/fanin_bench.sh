#!/usr/bin/env bash
# Wide-fleet merge gate (DESIGN.md §13): the coordinator's per-round merge
# fold for a 64-leaf fan-in-4 aggregator tree (4 top slots, height 2) must
# stay within MERGE_FANIN_MAX (default 8x) of the flat 4-worker baseline,
# and the flat 64-worker fold it replaces must cost at least
# MERGE_FANIN_WIN (default 3x) more than the tree — i.e. the tier actually
# removes the O(W) coordinator fold instead of merely relocating it. All
# three shapes play the identical total batch, so the metric isolates the
# fan-in-dependent fold overhead. Benchmarks run interleaved -count times
# and the minima are compared — the min is the noise-robust estimator for
# a "how fast can this go" ratio on shared CI hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

MERGE_FANIN_MAX="${MERGE_FANIN_MAX:-8.0}"
MERGE_FANIN_WIN="${MERGE_FANIN_WIN:-3.0}"
COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-2x}"
OUT="$(mktemp)"

go test ./internal/collect -run=NONE \
  -bench='^BenchmarkMergeFanin$/(Flat4|Flat64|Tree64)$' \
  -benchtime="$BENCHTIME" -count="$COUNT" | tee "$OUT"

awk -v max="$MERGE_FANIN_MAX" -v win="$MERGE_FANIN_WIN" '
  # The merge share is the custom metric column: the value preceding the
  # "merge-ns/round" unit token.
  function metric(   i) {
    for (i = 2; i <= NF; i++) if ($i == "merge-ns/round") return $(i - 1)
    return 0
  }
  $1 ~ /^BenchmarkMergeFanin\/Flat4(-[0-9]+)?$/  { v = metric(); if (flat4 == 0 || v < flat4) flat4 = v }
  $1 ~ /^BenchmarkMergeFanin\/Flat64(-[0-9]+)?$/ { v = metric(); if (flat64 == 0 || v < flat64) flat64 = v }
  $1 ~ /^BenchmarkMergeFanin\/Tree64(-[0-9]+)?$/ { v = metric(); if (tree64 == 0 || v < tree64) tree64 = v }
  END {
    if (flat4 == 0 || flat64 == 0 || tree64 == 0) {
      print "FAIL: missing benchmark results (flat4=" flat4 ", flat64=" flat64 ", tree64=" tree64 ")" > "/dev/stderr"
      exit 1
    }
    ratio = tree64 / flat4
    save = flat64 / tree64
    printf "merge fan-in: flat-4 %d ns/round, flat-64 %d ns/round, tree-64 %d ns/round\n", flat4, flat64, tree64
    printf "merge fan-in: tree-64 / flat-4 = %.2f (max %s), flat-64 / tree-64 = %.2f (min %s)\n", ratio, max, save, win
    if (ratio > max) {
      print "FAIL: tree merge drifted away from the flat baseline" > "/dev/stderr"
      exit 1
    }
    if (save < win) {
      print "FAIL: the tree no longer removes the O(W) coordinator fold" > "/dev/stderr"
      exit 1
    }
  }' "$OUT"

echo "merge fan-in gate: OK"
