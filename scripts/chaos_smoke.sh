#!/usr/bin/env bash
# Chaos smoke for the fleet runtime (DESIGN.md §8): real processes, real
# sockets, real kill -9.
#
# Scenario A — worker kill + re-join: a TCP worker is killed mid-game and
# re-spawned with `-rejoin` on its old address; the coordinator must
# re-admit it at a round boundary and the run must match the uninterrupted
# shard-local reference record for record outside the degraded window
# (`-local` verifies and fails otherwise).
#
# Scenario B — coordinator kill + resume: the coordinator is killed
# mid-game and restarted with `-resume`; it must finish from its latest
# checkpoint and match the reference record for record.
#
# Scenario C — mid-tree aggregator kill + re-join (DESIGN.md §13): eight
# TCP workers sit behind two `trimlab aggregator` processes and the
# coordinator talks only to the aggregators. One aggregator is killed -9
# mid-game — the coordinator must charge all four of that subtree's leaves
# as per-leaf shard losses — and a fresh aggregator re-spawned with
# `-rejoin` on the old address (re-dialling the still-running workers)
# must be re-admitted at a round boundary, after which `-local` verifies
# the post-recovery records against the flat 8-shard reference.
#
# COORD_FLAGS adds extra coordinator flags to every run — CI runs the
# whole script a second time with COORD_FLAGS=-pipeline so the overlapped
# round schedule survives the same kill -9 chaos (speculation must flush at
# the membership change and the -local verification must still pass).
#
# Scenario A also exercises the observability endpoint mid-chaos: the
# coordinator serves -obs-addr, and while the game is still running the
# script scrapes /metrics until trimlab_shard_loss_total goes nonzero and
# /events until the fleet-admit (re-join) event lands — then asserts the
# event ring shows the loss strictly before the re-admission.
set -euo pipefail

TRIMLAB="${TRIMLAB:-/tmp/trimlab-chaos}"
WORKDIR="$(mktemp -d)"
PORT0="${PORT0:-7401}"
PORT1="${PORT1:-7402}"
OBS_PORT="${OBS_PORT:-7403}"
ROUNDS=150
BATCH=100000
SEED=7
COORD_FLAGS="${COORD_FLAGS:-}"
OBS_URL="http://127.0.0.1:$OBS_PORT"

# poll_obs PATH PATTERN LABEL: curl $OBS_URL$PATH until a line matches
# PATTERN (extended regex) or ~20 s pass — the coordinator must still be
# mid-game, so a timeout means the signal never surfaced live.
poll_obs() {
  local path="$1" pattern="$2" label="$3" i
  for i in $(seq 1 100); do
    if curl -fsS "$OBS_URL$path" 2>/dev/null | grep -Eq "$pattern"; then
      return 0
    fi
    sleep 0.2
  done
  echo "FAIL: $label never appeared on $path while the game ran" >&2
  curl -fsS "$OBS_URL$path" >&2 2>/dev/null || true
  return 1
}

cleanup() {
  pkill -P $$ 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$TRIMLAB" ./cmd/trimlab

echo "== scenario A: worker kill + re-join =="
"$TRIMLAB" worker -listen "127.0.0.1:$PORT0" -id 0 >"$WORKDIR/w0.log" 2>&1 &
"$TRIMLAB" worker -listen "127.0.0.1:$PORT1" -id 1 >"$WORKDIR/w1.log" 2>&1 &
W1_PID=$!
"$TRIMLAB" coordinator -workers "127.0.0.1:$PORT0,127.0.0.1:$PORT1" \
  -local -rejoin -heartbeat 100ms -rounds "$ROUNDS" -batch "$BATCH" -seed "$SEED" \
  -obs-addr "127.0.0.1:$OBS_PORT" $COORD_FLAGS \
  >"$WORKDIR/coordA.log" 2>&1 &
COORD_PID=$!
sleep 1.5
kill -9 "$W1_PID"
sleep 0.5
"$TRIMLAB" worker -listen "127.0.0.1:$PORT1" -id 1 -rejoin >"$WORKDIR/w1b.log" 2>&1 &
if command -v curl >/dev/null 2>&1; then
  echo "-- scraping $OBS_URL mid-game"
  poll_obs /metrics '^trimlab_shard_loss_total [1-9]' "nonzero trimlab_shard_loss_total"
  poll_obs /events '"kind":"fleet-admit"' "fleet-admit (re-join) event"
  curl -fsS "$OBS_URL/events" >"$WORKDIR/events.ndjson"
  loss_line="$(grep -n '"kind":"shard-loss"' "$WORKDIR/events.ndjson" | head -1 | cut -d: -f1)"
  admit_line="$(grep -n '"kind":"fleet-admit"' "$WORKDIR/events.ndjson" | head -1 | cut -d: -f1)"
  if [ -z "$loss_line" ] || [ -z "$admit_line" ] || [ "$loss_line" -ge "$admit_line" ]; then
    echo "FAIL: event ring does not show shard-loss (line ${loss_line:-none}) before fleet-admit (line ${admit_line:-none})" >&2
    cat "$WORKDIR/events.ndjson" >&2
    exit 1
  fi
  echo "-- /metrics and /events live: shard loss observed, then re-join (events $loss_line < $admit_line)"
else
  echo "curl not installed; skipping the mid-game /metrics + /events scrape" >&2
fi
if ! wait "$COORD_PID"; then
  echo "FAIL: coordinator exited non-zero after kill/re-join" >&2
  cat "$WORKDIR/coordA.log" >&2
  exit 1
fi
grep -q "re-joined" "$WORKDIR/coordA.log" || {
  echo "FAIL: worker never re-joined (kill/respawn missed the game window?)" >&2
  cat "$WORKDIR/coordA.log" >&2
  exit 1
}
grep -q "match the shard-local reference record for record: OK" "$WORKDIR/coordA.log" || {
  echo "FAIL: post-recovery records not verified" >&2
  cat "$WORKDIR/coordA.log" >&2
  exit 1
}
grep -E "re-joined|shard loss|records" "$WORKDIR/coordA.log"
pkill -P $$ 2>/dev/null || true
sleep 0.3

echo "== scenario B: coordinator kill + resume =="
CKPT="$WORKDIR/ckpt"
"$TRIMLAB" worker -listen "127.0.0.1:$PORT0" -id 0 >"$WORKDIR/w0b.log" 2>&1 &
"$TRIMLAB" worker -listen "127.0.0.1:$PORT1" -id 1 >"$WORKDIR/w1c.log" 2>&1 &
"$TRIMLAB" coordinator -workers "127.0.0.1:$PORT0,127.0.0.1:$PORT1" \
  -local -checkpoint-dir "$CKPT" -checkpoint-every 10 -rounds "$ROUNDS" -batch "$BATCH" -seed "$SEED" $COORD_FLAGS \
  >"$WORKDIR/coordB1.log" 2>&1 &
COORD_PID=$!
sleep 2.5
kill -9 "$COORD_PID" 2>/dev/null || true
wait "$COORD_PID" 2>/dev/null || true
ls "$CKPT"/checkpoint-*.tq >/dev/null 2>&1 || {
  echo "FAIL: no checkpoints written before the coordinator was killed" >&2
  cat "$WORKDIR/coordB1.log" >&2
  exit 1
}
# The workers survive the dead coordinator; the resumed one redials them.
if ! "$TRIMLAB" coordinator -workers "127.0.0.1:$PORT0,127.0.0.1:$PORT1" \
  -local -checkpoint-dir "$CKPT" -resume -rounds "$ROUNDS" -batch "$BATCH" -seed "$SEED" $COORD_FLAGS \
  >"$WORKDIR/coordB2.log" 2>&1; then
  echo "FAIL: resumed coordinator exited non-zero" >&2
  cat "$WORKDIR/coordB2.log" >&2
  exit 1
fi
grep -q "resuming from" "$WORKDIR/coordB2.log" || {
  echo "FAIL: coordinator did not resume from a checkpoint" >&2
  cat "$WORKDIR/coordB2.log" >&2
  exit 1
}
grep -q "board matches the single-process shard-local reference record for record: OK" "$WORKDIR/coordB2.log" || {
  echo "FAIL: resumed board not verified against the reference" >&2
  cat "$WORKDIR/coordB2.log" >&2
  exit 1
}
grep -E "resuming|matches" "$WORKDIR/coordB2.log"
pkill -P $$ 2>/dev/null || true
sleep 0.3

echo "== scenario C: mid-tree aggregator kill + re-join =="
AGG_PORT0="${AGG_PORT0:-7404}"
AGG_PORT1="${AGG_PORT1:-7405}"
LEAF_BASE="${LEAF_BASE:-7411}"
KIDS0="" KIDS1=""
for i in $(seq 0 7); do
  "$TRIMLAB" worker -listen "127.0.0.1:$((LEAF_BASE + i))" -id "$i" >"$WORKDIR/leaf$i.log" 2>&1 &
  if [ "$i" -lt 4 ]; then
    KIDS0="$KIDS0${KIDS0:+,}127.0.0.1:$((LEAF_BASE + i))"
  else
    KIDS1="$KIDS1${KIDS1:+,}127.0.0.1:$((LEAF_BASE + i))"
  fi
done
"$TRIMLAB" aggregator -listen "127.0.0.1:$AGG_PORT0" -id 0 -children "$KIDS0" >"$WORKDIR/agg0.log" 2>&1 &
"$TRIMLAB" aggregator -listen "127.0.0.1:$AGG_PORT1" -id 1 -children "$KIDS1" >"$WORKDIR/agg1.log" 2>&1 &
AGG1_PID=$!
"$TRIMLAB" coordinator -workers "127.0.0.1:$AGG_PORT0,127.0.0.1:$AGG_PORT1" \
  -local -rejoin -heartbeat 100ms -rounds "$ROUNDS" -batch "$BATCH" -seed "$SEED" $COORD_FLAGS \
  >"$WORKDIR/coordC.log" 2>&1 &
COORD_PID=$!
sleep 1.5
kill -9 "$AGG1_PID"
sleep 0.5
# The subtree's workers survived the dead aggregator; the re-spawned one
# re-dials them and re-joins the game on the old address.
"$TRIMLAB" aggregator -listen "127.0.0.1:$AGG_PORT1" -id 1 -children "$KIDS1" -rejoin \
  >"$WORKDIR/agg1b.log" 2>&1 &
if ! wait "$COORD_PID"; then
  echo "FAIL: coordinator exited non-zero after the aggregator kill/re-join" >&2
  cat "$WORKDIR/coordC.log" >&2
  exit 1
fi
grep -q "merge topology: 8 leaves behind 2 slots, height 1" "$WORKDIR/coordC.log" || {
  echo "FAIL: coordinator never reported the 8-leaf/2-slot tree topology" >&2
  cat "$WORKDIR/coordC.log" >&2
  exit 1
}
# Killing one aggregator loses its whole 4-leaf subtree, charged per leaf.
LOSSES="$(grep -c "shard loss: round" "$WORKDIR/coordC.log" || true)"
if [ "$LOSSES" -lt 4 ]; then
  echo "FAIL: expected >=4 per-leaf shard losses from the dead subtree, saw $LOSSES" >&2
  cat "$WORKDIR/coordC.log" >&2
  exit 1
fi
grep -q "re-joined" "$WORKDIR/coordC.log" || {
  echo "FAIL: the re-spawned aggregator never re-joined" >&2
  cat "$WORKDIR/coordC.log" >&2
  exit 1
}
grep -q "match the shard-local reference record for record: OK" "$WORKDIR/coordC.log" || {
  echo "FAIL: post-recovery records not verified against the flat reference" >&2
  cat "$WORKDIR/coordC.log" >&2
  exit 1
}
grep -E "merge topology|re-joined|shard loss: round 2|records" "$WORKDIR/coordC.log"

echo "chaos smoke: OK"
