#!/usr/bin/env bash
# Single entry point for every style and static check. CI's lint job runs
# this same script (after installing staticcheck/govulncheck), so a clean
# local run means a clean lint job. Tools that are not installed locally
# are skipped with a warning rather than failing the run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l -s"
out="$(gofmt -l -s cmd internal examples ./*.go)"
if [ -n "$out" ]; then
  echo "gofmt -s needed on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== trimlint"
go run ./cmd/trimlint ./...

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
else
  echo "staticcheck not installed; skipped (CI installs it)" >&2
fi

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
  govulncheck ./...
else
  echo "govulncheck not installed; skipped (CI installs it)" >&2
fi

echo "lint clean"
